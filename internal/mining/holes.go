package mining

import (
	"fmt"
	"math"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// HoleMinerConfig controls join-hole discovery.
type HoleMinerConfig struct {
	// Grid is the resolution of the occupancy grid in each dimension. The
	// [8] algorithm finds exact maximal empty rectangles in time linear in
	// the join size; we reproduce the linear-time property with a
	// grid-quantized variant: one linear pass marks occupied cells, then
	// maximal empty rectangles are extracted from the g×g grid. Holes are
	// conservative (rounded inward), so trimming by them is always sound.
	// Default 32.
	Grid int
	// MinCells drops holes covering fewer grid cells (noise). Default 4.
	MinCells int
	// MaxHoles caps the report, largest first. Default 16.
	MaxHoles int
}

func (c *HoleMinerConfig) defaults() {
	if c.Grid <= 0 {
		c.Grid = 32
	}
	if c.MinCells <= 0 {
		c.MinCells = 4
	}
	if c.MaxHoles <= 0 {
		c.MaxHoles = 16
	}
}

// JoinHoleRequest names the join path and profiled attributes.
type JoinHoleRequest struct {
	Left, Right         *catalog.TableEntry
	JoinLeft, JoinRight string // equi-join columns
	AttrLeft, AttrRight string // profiled attributes
	Config              HoleMinerConfig
}

// MineJoinHoles executes the equi-join (hash join, linear in input and
// output sizes), collects the (AttrLeft, AttrRight) points of the result,
// and extracts maximal empty rectangles. It returns the hole set ready for
// catalog registration, plus the number of join result rows profiled.
func MineJoinHoles(req JoinHoleRequest) (*catalog.JoinHoles, int, error) {
	cfg := req.Config
	cfg.defaults()
	jl := req.Left.Def.ColumnIndex(req.JoinLeft)
	jr := req.Right.Def.ColumnIndex(req.JoinRight)
	al := req.Left.Def.ColumnIndex(req.AttrLeft)
	ar := req.Right.Def.ColumnIndex(req.AttrRight)
	if jl < 0 || jr < 0 || al < 0 || ar < 0 {
		return nil, 0, fmt.Errorf("mining: unknown column in join-hole request")
	}
	// Build side: right table keyed by join column. Datum is a comparable
	// value type, so it keys the map directly — the whole pass stays
	// allocation-light and linear.
	build := map[types.Datum][]float64{} // join key -> attrRight values
	req.Right.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		k, a := row[jr], row[ar]
		if k.IsNull() || a.IsNull() || !a.IsNumeric() {
			return true
		}
		build[k] = append(build[k], a.Float())
		return true
	})
	// Probe and collect points.
	var ptsA, ptsB []float64
	req.Left.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		k, a := row[jl], row[al]
		if k.IsNull() || a.IsNull() || !a.IsNumeric() {
			return true
		}
		for _, b := range build[k] {
			ptsA = append(ptsA, a.Float())
			ptsB = append(ptsB, b)
		}
		return true
	})
	if len(ptsA) == 0 {
		return nil, 0, fmt.Errorf("mining: empty join result; nothing to profile")
	}
	kindA := req.Left.Def.Columns[al].Type
	kindB := req.Right.Def.Columns[ar].Type
	holes := ExtractHoles(ptsA, ptsB, kindA, kindB, cfg)
	jh := &catalog.JoinHoles{
		LeftTable:  req.Left.Def.Name,
		RightTable: req.Right.Def.Name,
		JoinLeft:   req.JoinLeft,
		JoinRight:  req.JoinRight,
		AttrLeft:   req.AttrLeft,
		AttrRight:  req.AttrRight,
		Holes:      holes,
	}
	jh.VerifiedVersion = req.Left.Heap.Version()
	return jh, len(ptsA), nil
}

// ExtractHoles grids the point set and enumerates maximal empty rectangles
// over the grid, converting them back to (conservatively shrunk) value
// rectangles.
func ExtractHoles(ptsA, ptsB []float64, kindA, kindB types.Kind, cfg HoleMinerConfig) []catalog.Rect {
	cfg.defaults()
	g := cfg.Grid
	minA, maxA := minMax(ptsA)
	minB, maxB := minMax(ptsB)
	if maxA <= minA || maxB <= minB {
		return nil
	}
	// Occupancy grid: one linear pass.
	occupied := make([]bool, g*g)
	cell := func(v, lo, hi float64) int {
		c := int(float64(g) * (v - lo) / (hi - lo))
		if c >= g {
			c = g - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for i := range ptsA {
		occupied[cell(ptsA[i], minA, maxA)*g+cell(ptsB[i], minB, maxB)] = true
	}
	rects := maximalEmptyRects(occupied, g)
	// Convert cell rectangles to value rectangles, rounding inward so the
	// reported hole is truly empty.
	cellLoA := func(c int) float64 { return minA + float64(c)*(maxA-minA)/float64(g) }
	cellLoB := func(c int) float64 { return minB + float64(c)*(maxB-minB)/float64(g) }
	var out []catalog.Rect
	for _, r := range rects {
		if (r.a2-r.a1+1)*(r.b2-r.b1+1) < cfg.MinCells {
			continue
		}
		ia, ok1 := valueInterval(cellLoA(r.a1), cellLoA(r.a2+1), kindA)
		ib, ok2 := valueInterval(cellLoB(r.b1), cellLoB(r.b2+1), kindB)
		if !ok1 || !ok2 {
			continue
		}
		// A hole reaching the grid edge extends unbounded on that side:
		// the bounding box is the extent of actual join results, so the
		// region beyond it is empty too.
		if r.a1 == 0 {
			ia.HasLo = false
		}
		if r.a2 == g-1 {
			ia.HasHi = false
		}
		if r.b1 == 0 {
			ib.HasLo = false
		}
		if r.b2 == g-1 {
			ib.HasHi = false
		}
		out = append(out, catalog.Rect{A: ia, B: ib})
		if len(out) >= cfg.MaxHoles {
			break
		}
	}
	return out
}

// valueInterval converts a half-open float cell range [lo, hi) into a
// closed datum interval shrunk inward for integer kinds.
func valueInterval(lo, hi float64, kind types.Kind) (expr.Interval, bool) {
	switch kind {
	case types.KindInt, types.KindDate:
		l := int64(math.Ceil(lo))
		h := int64(math.Ceil(hi)) - 1
		if l > h {
			return expr.Interval{}, false
		}
		mk := types.NewInt
		if kind == types.KindDate {
			mk = types.NewDate
		}
		return expr.Between(mk(l), mk(h), true, true), true
	default:
		if lo >= hi {
			return expr.Interval{}, false
		}
		return expr.Between(types.NewFloat(lo), types.NewFloat(hi), true, false), true
	}
}

type cellRect struct{ a1, a2, b1, b2 int }

// maximalEmptyRects enumerates maximal all-empty axis-aligned rectangles in
// a g×g occupancy grid, largest area first. The classic histogram-stack
// method runs in O(g²) per orientation.
func maximalEmptyRects(occupied []bool, g int) []cellRect {
	// For each cell, height of the empty column ending at this row.
	heights := make([]int, g)
	var out []cellRect
	seen := map[cellRect]bool{}
	for a := 0; a < g; a++ {
		for b := 0; b < g; b++ {
			if occupied[a*g+b] {
				heights[b] = 0
			} else {
				heights[b]++
			}
		}
		// Maximal rectangles ending at row a via the histogram.
		type stkEnt struct{ start, h int }
		var stack []stkEnt
		for b := 0; b <= g; b++ {
			h := 0
			if b < g {
				h = heights[b]
			}
			start := b
			for len(stack) > 0 && stack[len(stack)-1].h >= h {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top.h > 0 {
					r := cellRect{a1: a - top.h + 1, a2: a, b1: top.start, b2: b - 1}
					// Keep only rectangles maximal in height at this row
					// (the histogram guarantees width-maximality).
					if !seen[r] {
						seen[r] = true
						out = append(out, r)
					}
				}
				start = top.start
			}
			if h > 0 && (len(stack) == 0 || stack[len(stack)-1].h < h) {
				stack = append(stack, stkEnt{start: start, h: h})
			}
		}
	}
	// Drop rectangles contained in another; sort by area descending.
	out = dropContained(out)
	return out
}

func dropContained(rects []cellRect) []cellRect {
	area := func(r cellRect) int { return (r.a2 - r.a1 + 1) * (r.b2 - r.b1 + 1) }
	// Sort by area descending so containment checks see big ones first.
	for i := 1; i < len(rects); i++ {
		for j := i; j > 0 && area(rects[j]) > area(rects[j-1]); j-- {
			rects[j], rects[j-1] = rects[j-1], rects[j]
		}
	}
	var kept []cellRect
	for _, r := range rects {
		contained := false
		for _, k := range kept {
			if k.a1 <= r.a1 && r.a2 <= k.a2 && k.b1 <= r.b1 && r.b2 <= k.b2 {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, r)
		}
	}
	return kept
}

func minMax(v []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
