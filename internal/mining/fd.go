package mining

import (
	"sort"

	"softdb/internal/catalog"
	"softdb/internal/schema"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// FDMinerConfig controls functional-dependency discovery.
type FDMinerConfig struct {
	// MaxLHS bounds determinant size. Default 2.
	MaxLHS int
	// MinConfidence is the weakest approximate FD worth reporting, using
	// the g3 measure (1 - rows-to-remove / rows). 1 reports exact FDs
	// only. Default 1.
	MinConfidence float64
	// MinRows skips tables with too little data. Default 16.
	MinRows int
}

func (c *FDMinerConfig) defaults() {
	if c.MaxLHS <= 0 {
		c.MaxLHS = 2
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 1
	}
	if c.MinRows <= 0 {
		c.MinRows = 16
	}
}

// FD is one discovered dependency.
type FD struct {
	Det        []string // determinant column names
	Dep        string   // dependent column name
	Confidence float64  // g3 measure; 1 means exact
}

// MineFDs discovers (approximate) functional dependencies with determinants
// up to cfg.MaxLHS columns, via partition refinement over in-memory value
// vectors. Non-minimal FDs (a superset determinant for a dependency already
// found) are suppressed.
func MineFDs(def *schema.Table, heap *storage.Heap, cfg FDMinerConfig) []FD {
	cfg.defaults()
	n := int(heap.RowCount())
	if n < cfg.MinRows {
		return nil
	}
	arity := def.Arity()
	// Materialize column value keys once.
	colKeys := make([][]string, arity)
	for i := range colKeys {
		colKeys[i] = make([]string, 0, n)
	}
	heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		for i, d := range row {
			colKeys[i] = append(colKeys[i], types.Row{d}.Key())
		}
		return true
	})

	var out []FD
	found := map[int][][]int{} // dep ordinal -> determinant ordinal sets found
	isSubsumed := func(dep int, det []int) bool {
		for _, prev := range found[dep] {
			if subset(prev, det) {
				return true
			}
		}
		return false
	}

	consider := func(det []int, dep int) {
		if contains(det, dep) || isSubsumed(dep, det) {
			return
		}
		conf := fdConfidence(colKeys, det, dep, n)
		if conf < cfg.MinConfidence {
			return
		}
		names := make([]string, len(det))
		for i, d := range det {
			names[i] = def.Columns[d].Name
		}
		out = append(out, FD{Det: names, Dep: def.Columns[dep].Name, Confidence: conf})
		found[dep] = append(found[dep], append([]int(nil), det...))
	}

	// Level 1: single-column determinants.
	for a := 0; a < arity; a++ {
		for dep := 0; dep < arity; dep++ {
			consider([]int{a}, dep)
		}
	}
	// Level 2: pairs (only when MaxLHS allows).
	if cfg.MaxLHS >= 2 {
		for a := 0; a < arity; a++ {
			for b := a + 1; b < arity; b++ {
				for dep := 0; dep < arity; dep++ {
					consider([]int{a, b}, dep)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Det) != len(out[j].Det) {
			return len(out[i].Det) < len(out[j].Det)
		}
		if out[i].Dep != out[j].Dep {
			return out[i].Dep < out[j].Dep
		}
		return out[i].Det[0] < out[j].Det[0]
	})
	return out
}

// fdConfidence computes the g3 measure of det → dep: the fraction of rows
// kept after removing the fewest rows that break the dependency (within
// each determinant group, keep the plurality dependent value).
func fdConfidence(colKeys [][]string, det []int, dep int, n int) float64 {
	if n == 0 {
		return 0
	}
	groups := map[string]map[string]int{}
	for r := 0; r < n; r++ {
		var key string
		for _, d := range det {
			key += colKeys[d][r] + "\x00"
		}
		m := groups[key]
		if m == nil {
			m = map[string]int{}
			groups[key] = m
		}
		m[colKeys[dep][r]]++
	}
	kept := 0
	for _, m := range groups {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		kept += best
	}
	return float64(kept) / float64(n)
}

// ToConstraint converts a discovered FD into a catalog constraint: exact
// FDs become absolute soft constraints, approximate ones statistical.
func (fd FD) ToConstraint(table string) *catalog.Constraint {
	mode := catalog.ModeSoftAbsolute
	if fd.Confidence < 1 {
		mode = catalog.ModeSoftStatistical
	}
	return &catalog.Constraint{
		Kind:       catalog.FuncDep,
		Mode:       mode,
		Table:      table,
		Columns:    fd.Det,
		DepColumns: []string{fd.Dep},
		Confidence: fd.Confidence,
	}
}

// VerifyFD recomputes the FD's confidence against the current table state,
// the asynchronous maintenance pass for soft FDs.
func VerifyFD(def *schema.Table, heap *storage.Heap, det []string, dep string) float64 {
	n := int(heap.RowCount())
	if n == 0 {
		return 1
	}
	detOrds := make([]int, len(det))
	for i, d := range det {
		detOrds[i] = def.ColumnIndex(d)
		if detOrds[i] < 0 {
			return 0
		}
	}
	depOrd := def.ColumnIndex(dep)
	if depOrd < 0 {
		return 0
	}
	groups := map[string]map[string]int{}
	heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		key := row.Project(detOrds).Key()
		m := groups[key]
		if m == nil {
			m = map[string]int{}
			groups[key] = m
		}
		m[types.Row{row[depOrd]}.Key()]++
		return true
	})
	kept := 0
	for _, m := range groups {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		kept += best
	}
	return float64(kept) / float64(n)
}

func subset(small, big []int) bool {
	for _, s := range small {
		if !contains(big, s) {
			return false
		}
	}
	return true
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
