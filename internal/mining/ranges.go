package mining

import (
	"fmt"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// MineRanges produces Sybase-style min/max soft constraints: for every
// orderable column with at least minRows non-null values, a check
// constraint `col BETWEEN min AND max` as an absolute soft constraint.
// These back range abbreviation in queries and single-column branch
// pruning.
func MineRanges(def *schema.Table, heap *storage.Heap, minRows int) []*catalog.Constraint {
	if minRows <= 0 {
		minRows = 16
	}
	arity := def.Arity()
	mins := make([]types.Datum, arity)
	maxs := make([]types.Datum, arity)
	counts := make([]int, arity)
	for i := range mins {
		mins[i], maxs[i] = types.Null, types.Null
	}
	heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		for i, d := range row {
			if d.IsNull() {
				continue
			}
			counts[i]++
			if mins[i].IsNull() || d.Compare(mins[i]) < 0 {
				mins[i] = d
			}
			if maxs[i].IsNull() || d.Compare(maxs[i]) > 0 {
				maxs[i] = d
			}
		}
		return true
	})
	var out []*catalog.Constraint
	for i, col := range def.Columns {
		if counts[i] < minRows || mins[i].IsNull() {
			continue
		}
		c := expr.NewColumn(def.Name, col.Name, i, col.Type)
		check := expr.And(
			expr.NewBinary(expr.OpGe, c, expr.NewConst(mins[i])),
			expr.NewBinary(expr.OpLe, c, expr.NewConst(maxs[i])),
		)
		out = append(out, &catalog.Constraint{
			Name:       fmt.Sprintf("range_%s_%s", def.Name, col.Name),
			Kind:       catalog.Check,
			Mode:       catalog.ModeSoftAbsolute,
			Table:      def.Name,
			CheckExpr:  check,
			Confidence: 1,
			Active:     true,
		})
	}
	return out
}
