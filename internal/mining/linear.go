// Package mining implements the discovery algorithms the paper's soft
// constraints come from: linear correlations between numeric attribute
// pairs ([10]), join holes — maximal empty rectangles over a join's
// attribute plane ([8]), functional dependencies via partition refinement
// ([29] and the FD-mining literature), and simple min/max value ranges
// (Sybase-style soft range constraints).
package mining

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/schema"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// LinearFit is a least-squares fit A ≈ K*B + B0 with its residual
// distribution, from which ε envelopes at any confidence are read off.
type LinearFit struct {
	K, B0 float64
	// AbsResiduals are |A - (K*B + B0)| sorted ascending.
	AbsResiduals []float64
	N            int
	// RangeA is the spread of A values, for judging ε's selectivity.
	RangeA float64
}

// FitLinear computes the least-squares line over the non-null numeric
// pairs of columns aOrd and bOrd. It returns an error with fewer than two
// points or a degenerate B column.
func FitLinear(heap *storage.Heap, aOrd, bOrd int) (*LinearFit, error) {
	var xs, ys []float64
	heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		a, b := row[aOrd], row[bOrd]
		if a.IsNull() || b.IsNull() || !a.IsNumeric() || !b.IsNumeric() {
			return true
		}
		ys = append(ys, a.Float())
		xs = append(xs, b.Float())
		return true
	})
	return fitLinearPoints(xs, ys)
}

func fitLinearPoints(xs, ys []float64) (*LinearFit, error) {
	n := len(xs)
	if n < 2 {
		return nil, fmt.Errorf("mining: need at least 2 points, have %d", n)
	}
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den == 0 {
		return nil, fmt.Errorf("mining: B column is constant; no linear fit")
	}
	k := (fn*sumXY - sumX*sumY) / den
	b0 := (sumY - k*sumX) / fn
	fit := &LinearFit{K: k, B0: b0, N: n}
	minA, maxA := math.Inf(1), math.Inf(-1)
	for i := range xs {
		r := math.Abs(ys[i] - (k*xs[i] + b0))
		fit.AbsResiduals = append(fit.AbsResiduals, r)
		minA = math.Min(minA, ys[i])
		maxA = math.Max(maxA, ys[i])
	}
	sort.Float64s(fit.AbsResiduals)
	fit.RangeA = maxA - minA
	return fit, nil
}

// EpsForConfidence returns the smallest ε such that at least the given
// fraction of rows satisfy |A - (K*B+B0)| <= ε. Confidence 1 returns the
// maximum residual (an absolute envelope).
func (f *LinearFit) EpsForConfidence(confidence float64) float64 {
	if len(f.AbsResiduals) == 0 {
		return 0
	}
	if confidence >= 1 {
		return f.AbsResiduals[len(f.AbsResiduals)-1]
	}
	idx := int(math.Ceil(confidence*float64(len(f.AbsResiduals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return f.AbsResiduals[idx]
}

// ConfidenceForEps returns the fraction of rows within ε of the line.
func (f *LinearFit) ConfidenceForEps(eps float64) float64 {
	if len(f.AbsResiduals) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(f.AbsResiduals, math.Nextafter(eps, math.Inf(1)))
	return float64(i) / float64(len(f.AbsResiduals))
}

// Selectivity reports ε's width relative to A's range: small values mean a
// derived predicate on A selects a narrow band, which is what makes the
// correlation useful ([10]'s selectivity requirement).
func (f *LinearFit) Selectivity(eps float64) float64 {
	if f.RangeA <= 0 {
		return 1
	}
	return math.Min(1, 2*eps/f.RangeA)
}

// LinearMinerConfig controls the table-wide correlation search.
type LinearMinerConfig struct {
	// MaxEpsFraction bounds ε relative to A's value range; pairs whose
	// absolute envelope is wider are rejected as unselective ([10]'s
	// threshold). Default 0.1.
	MaxEpsFraction float64
	// MinConfidence is the weakest SSC worth reporting when the absolute
	// envelope fails the ε test. Default 0.9.
	MinConfidence float64
	// MinRows skips tables with too little data. Default 32.
	MinRows int
}

func (c *LinearMinerConfig) defaults() {
	if c.MaxEpsFraction <= 0 {
		c.MaxEpsFraction = 0.1
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.9
	}
	if c.MinRows <= 0 {
		c.MinRows = 32
	}
}

// MineCorrelations searches every ordered pair of numeric columns of the
// table for useful linear correlations, the [10] discovery pass. For each
// pair it prefers an absolute (100%) envelope when selective enough, else
// a statistical envelope at MinConfidence.
func MineCorrelations(def *schema.Table, heap *storage.Heap, cfg LinearMinerConfig) []*catalog.LinearCorrelation {
	cfg.defaults()
	if int(heap.RowCount()) < cfg.MinRows {
		return nil
	}
	var out []*catalog.LinearCorrelation
	numeric := numericOrdinals(def)
	for _, aOrd := range numeric {
		for _, bOrd := range numeric {
			if aOrd == bOrd {
				continue
			}
			fit, err := FitLinear(heap, aOrd, bOrd)
			if err != nil || fit.N < cfg.MinRows {
				continue
			}
			lc := &catalog.LinearCorrelation{
				Name: fmt.Sprintf("corr_%s_%s_%s",
					strings.ToLower(def.Name), strings.ToLower(def.Columns[aOrd].Name), strings.ToLower(def.Columns[bOrd].Name)),
				Table:  def.Name,
				ColA:   def.Columns[aOrd].Name,
				ColB:   def.Columns[bOrd].Name,
				K:      fit.K,
				B0:     fit.B0,
				Active: true,
			}
			absEps := fit.EpsForConfidence(1)
			switch {
			case fit.Selectivity(absEps) <= cfg.MaxEpsFraction:
				lc.Eps = absEps
				lc.Confidence = 1
			default:
				eps := fit.EpsForConfidence(cfg.MinConfidence)
				if fit.Selectivity(eps) > cfg.MaxEpsFraction {
					continue // not selective even statistically
				}
				lc.Eps = eps
				lc.Confidence = fit.ConfidenceForEps(eps)
			}
			lc.VerifiedVersion = heap.Version()
			out = append(out, lc)
		}
	}
	return out
}

func numericOrdinals(def *schema.Table) []int {
	var out []int
	for i, c := range def.Columns {
		switch c.Type {
		case types.KindInt, types.KindFloat, types.KindDate:
			out = append(out, i)
		}
	}
	return out
}
