package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"softdb/internal/exec"
	"softdb/internal/fault"
)

// ScanResult summarizes a log scan.
type ScanResult struct {
	// Records is how many well-formed records were decoded (commit records
	// included).
	Records int64
	// LastLSN is the highest LSN seen; 0 when the log held no records.
	LastLSN uint64
	// ValidBytes is the length of the longest well-formed prefix.
	ValidBytes int64
	// CommittedBytes is the length of the prefix ending at the last commit
	// or abort record — the last consistent group boundary. Recovery
	// truncates the file here before reopening the writer, so a leftover
	// unterminated group can never be extended into a decodable-but-wrong
	// group by later appends.
	CommittedBytes int64
	// MaxTxnID is the highest transaction ID seen on any record. The engine
	// seeds its transaction-ID allocator past it so a new transaction can
	// never collide with an unterminated group orphaned in the kept prefix.
	MaxTxnID int64
	// Tail is non-nil when the log ends in a torn or corrupt record: a
	// KindRecovery QueryError describing where and why the scan stopped.
	// A torn tail is not fatal — the valid prefix is still consistent —
	// so it is reported here rather than as ScanLog's error.
	Tail *exec.QueryError
}

// tailError classifies a framing/CRC failure as a non-fatal torn tail.
func tailError(off int64, why string) *exec.QueryError {
	return &exec.QueryError{
		Op:   "wal.scan",
		Kind: exec.KindRecovery,
		Err:  fmt.Errorf("torn log tail at byte %d: %s", off, why),
	}
}

// ScanLog reads the log at path and calls fn for every well-formed record
// in order. A missing file is an empty log. Framing, CRC, and decode
// failures end the scan and are reported in ScanResult.Tail; an error from
// fn is fatal and returned as is (wrapped callers classify it). The fault
// injector's WALReadCap site may shorten the visible log, simulating a
// short read.
func ScanLog(path string, inj *fault.Injector, fn func(*Record) error) (*ScanResult, error) {
	res := &ScanResult{}
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, &exec.QueryError{Op: "wal.scan", Kind: exec.KindRecovery,
			Err: fmt.Errorf("read log: %w", err)}
	}
	if capped := inj.WALReadCap(int64(len(buf))); capped < int64(len(buf)) {
		buf = buf[:capped]
	}

	off := int64(0)
	for off < int64(len(buf)) {
		rest := buf[off:]
		n, vn := binary.Uvarint(rest)
		if vn <= 0 {
			res.Tail = tailError(off, "truncated length prefix")
			break
		}
		// Frame = length prefix + 4-byte CRC + payload.
		if uint64(len(rest)-vn) < 4+n {
			res.Tail = tailError(off, "short record body")
			break
		}
		crcBytes := rest[vn : vn+4]
		payload := rest[vn+4 : vn+4+int(n)]
		want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
		if got := crc32.Checksum(payload, castagnoli); got != want {
			res.Tail = tailError(off, fmt.Sprintf("CRC mismatch (want %08x, got %08x)", want, got))
			break
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			res.Tail = tailError(off, derr.Error())
			break
		}
		off += int64(vn) + 4 + int64(n)
		res.Records++
		if rec.LSN > res.LastLSN {
			res.LastLSN = rec.LSN
		}
		res.ValidBytes = off
		if rec.Type == TypeCommit || rec.Type == TypeAbort {
			res.CommittedBytes = off
		}
		if rec.TxnID > res.MaxTxnID {
			res.MaxTxnID = rec.TxnID
		}
		if err := fn(rec); err != nil {
			return res, err
		}
	}
	return res, nil
}

// TruncateLog cuts the log at path back to size bytes — recovery's "drop
// the torn tail" step, run before the writer reopens the file.
func TruncateLog(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	return nil
}
