package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"softdb/internal/exec"
	"softdb/internal/fault"
)

// snapMagic opens every snapshot file; the trailing digit versions the
// layout.
const snapMagic = "SDBSNAP1"

// SnapshotPath returns the checkpoint snapshot path inside a data
// directory.
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot.db") }

// WriteSnapshot atomically replaces the checkpoint snapshot:
//
//	magic(8) | uvarint lastLSN | 4-byte CRC-32C of payload | uvarint len | payload
//
// written to a temp file, fsync'd, then renamed over the live name — so a
// crash at any byte leaves either the old snapshot or the new one, never a
// mix. lastLSN records the log position the snapshot captures; recovery
// skips replaying records at or below it, which also covers a crash
// between the rename and the log truncation that follows. The fault
// injector's WALSnapAllow site can tear the temp-file write; the torn temp
// file is removed and the old snapshot survives.
func WriteSnapshot(dir string, lastLSN uint64, payload []byte, inj *fault.Injector) error {
	buf := make([]byte, 0, len(snapMagic)+16+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, lastLSN)
	crc := crc32.Checksum(payload, castagnoli)
	buf = append(buf, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)

	tmp := SnapshotPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot temp: %w", err)
	}
	allowed, ferr := inj.WALSnapAllow(len(buf))
	if allowed > 0 {
		if _, werr := f.Write(buf[:allowed]); werr != nil && ferr == nil {
			ferr = werr
		}
	}
	if ferr == nil {
		ferr = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && ferr == nil {
		ferr = cerr
	}
	if ferr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", ferr)
	}
	if err := os.Rename(tmp, SnapshotPath(dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadSnapshot loads the checkpoint snapshot. found is false when no
// snapshot exists (a fresh data directory). Unlike a torn log tail, a
// corrupt snapshot is fatal: it is the recovery base, so there is no valid
// prefix to fall back to, and the error is a KindRecovery QueryError.
func ReadSnapshot(dir string) (payload []byte, lastLSN uint64, found bool, err error) {
	buf, rerr := os.ReadFile(SnapshotPath(dir))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, false, nil
		}
		return nil, 0, false, snapError(fmt.Errorf("read: %w", rerr))
	}
	if len(buf) < len(snapMagic) || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, 0, false, snapError(fmt.Errorf("bad magic"))
	}
	rest := buf[len(snapMagic):]
	lsn, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, false, snapError(fmt.Errorf("truncated lastLSN"))
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, 0, false, snapError(fmt.Errorf("truncated CRC"))
	}
	want := uint32(rest[0])<<24 | uint32(rest[1])<<16 | uint32(rest[2])<<8 | uint32(rest[3])
	rest = rest[4:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < plen {
		return nil, 0, false, snapError(fmt.Errorf("truncated payload"))
	}
	p := rest[n : n+int(plen)]
	if got := crc32.Checksum(p, castagnoli); got != want {
		return nil, 0, false, snapError(fmt.Errorf("CRC mismatch (want %08x, got %08x)", want, got))
	}
	return p, lsn, true, nil
}

func snapError(cause error) error {
	return &exec.QueryError{Op: "wal.snapshot", Kind: exec.KindRecovery,
		Err: fmt.Errorf("corrupt snapshot: %w", cause)}
}
