package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// sampleRecords returns one record of every loggable type (TypeCommit is
// appended by the writer itself).
func sampleRecords() []*Record {
	return []*Record{
		{Type: TypeInsert, Table: "orders", Row: types.Row{
			types.NewInt(42), types.NewString("späté"), types.NewFloat(3.25),
			types.NewBool(true), types.Null, types.NewDate(12345),
		}},
		{Type: TypeUpdate, Table: "orders", RID: storage.RowID{Page: 3, Slot: 17},
			Row: types.Row{types.NewInt(-7), types.NewString("")}},
		{Type: TypeDelete, Table: "orders", RID: storage.RowID{Page: 0, Slot: 0}},
		{Type: TypeDDL, SQL: "CREATE TABLE t (a INT)", Applied: true},
		{Type: TypeDDL, SQL: "CREATE TABLE t (a INT)", Applied: false},
		{Type: TypeSoft, Blob: []byte{0xde, 0xad, 0xbe, 0xef, 0x00}},
		{Type: TypeTruncate, Table: "orders"},
	}
}

func recordsEqual(a, b *Record) bool {
	if a.Type != b.Type || a.LSN != b.LSN || a.Table != b.Table ||
		a.RID != b.RID || a.SQL != b.SQL || a.Applied != b.Applied {
		return false
	}
	if (a.Row == nil) != (b.Row == nil) || (a.Row != nil && !a.Row.Equal(b.Row)) {
		return false
	}
	return bytes.Equal(a.Blob, b.Blob)
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		r.LSN = 991
		buf, err := appendPayload(nil, r)
		if err != nil {
			t.Fatalf("%s: encode: %v", r.Type, err)
		}
		got, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", r.Type, err)
		}
		if !recordsEqual(r, got) {
			t.Fatalf("%s: round trip: %+v != %+v", r.Type, got, r)
		}
	}
}

func TestWriterScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWriter(path, 1, WriterOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	// Two groups: the first four records, then the rest.
	if _, synced, err := w.Commit(want[:4]); err != nil || !synced {
		t.Fatalf("commit 1: synced=%v err=%v", synced, err)
	}
	if _, _, err := w.Commit(want[4:]); err != nil {
		t.Fatalf("commit 2: %v", err)
	}
	if w.Fsyncs() != 2 {
		t.Fatalf("fsyncs = %d, want 2", w.Fsyncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Record
	res, err := ScanLog(path, nil, func(r *Record) error {
		if r.Type != TypeCommit {
			got = append(got, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail != nil {
		t.Fatalf("unexpected tail error: %v", res.Tail)
	}
	// 7 payload records + 2 commit terminators.
	if res.Records != 9 {
		t.Fatalf("records = %d, want 9", res.Records)
	}
	if res.CommittedBytes != res.ValidBytes {
		t.Fatalf("committed %d != valid %d on a clean log", res.CommittedBytes, res.ValidBytes)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], got[i]) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// LSNs strictly increase and include the commits: 1..9.
	if res.LastLSN != 9 {
		t.Fatalf("last LSN = %d, want 9", res.LastLSN)
	}
}

// TestTruncationAtEveryByte is the torn-write matrix: a log ending in each
// record type, cut at every byte boundary of the final frame. Every prefix
// must scan without panicking, keep the committed prefix intact, and report
// a typed KindRecovery tail error (or a clean uncommitted group when the
// cut lands exactly on a frame boundary).
func TestTruncationAtEveryByte(t *testing.T) {
	for _, last := range sampleRecords() {
		t.Run(last.Type.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal.log")
			w, err := OpenWriter(path, 1, WriterOptions{Policy: SyncNone})
			if err != nil {
				t.Fatal(err)
			}
			// One committed group first, so truncation must never eat it.
			if _, _, err := w.Commit(sampleRecords()[:2]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := w.Commit([]*Record{last}); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			full, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// The first group ends at the first commit record's boundary.
			base, err := ScanLog(path, nil, func(*Record) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			firstCommit := int64(0)
			{
				// Re-scan to find the byte offset after the first commit.
				n := 0
				ScanLog(path, nil, func(r *Record) error {
					n++
					return nil
				})
				_ = n
			}
			// Locate the first group's end: scan a copy truncated to every
			// prefix; the committed boundary of the full log minus the last
			// group's bytes. Simpler: the last group is everything after
			// the first commit; find it by scanning offsets.
			offsets := frameOffsets(t, full)
			// offsets[i] = start of frame i; frame 2 is the first of the
			// final group (frames: 0,1 payload, 2 commit, 3 payload, 4 commit).
			if len(offsets) != 5 {
				t.Fatalf("frame count = %d, want 5", len(offsets))
			}
			firstCommit = offsets[3] // byte length of the committed first group

			for cut := firstCommit; cut < int64(len(full)); cut++ {
				if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				var replayed int64
				res, err := ScanLog(path, nil, func(r *Record) error {
					replayed++
					return nil
				})
				if err != nil {
					t.Fatalf("cut %d: fatal scan error: %v", cut, err)
				}
				// The committed first group always survives whole.
				if res.CommittedBytes != firstCommit {
					t.Fatalf("cut %d: committed bytes %d, want %d", cut, res.CommittedBytes, firstCommit)
				}
				if replayed < 3 {
					t.Fatalf("cut %d: lost committed records (saw %d)", cut, replayed)
				}
				if cut == firstCommit {
					// Exactly at the boundary: clean log, no tail error.
					if res.Tail != nil {
						t.Fatalf("cut %d: unexpected tail error %v", cut, res.Tail)
					}
					continue
				}
				if onBoundary(offsets, cut) {
					// Cut between frames: well-formed but uncommitted tail.
					if res.Tail != nil {
						t.Fatalf("cut %d: tail error on frame boundary: %v", cut, res.Tail)
					}
					continue
				}
				if res.Tail == nil {
					t.Fatalf("cut %d: torn frame not reported", cut)
				}
				if res.Tail.Kind != exec.KindRecovery {
					t.Fatalf("cut %d: tail kind %q, want recovery", cut, res.Tail.Kind)
				}
			}
			_ = base
		})
	}
}

// frameOffsets returns the byte offset where each frame starts.
func frameOffsets(t *testing.T, full []byte) []int64 {
	t.Helper()
	var offs []int64
	off := int64(0)
	for off < int64(len(full)) {
		offs = append(offs, off)
		rest := full[off:]
		n, vn := uvarint(rest)
		if vn <= 0 || int64(len(rest)) < int64(vn)+4+int64(n) {
			t.Fatalf("bad frame at %d", off)
		}
		off += int64(vn) + 4 + int64(n)
	}
	return offs
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func onBoundary(offs []int64, cut int64) bool {
	for _, o := range offs {
		if o == cut {
			return true
		}
	}
	return false
}

// TestCorruptPayloadCRC flips a byte inside a committed record: the CRC
// must catch it and classify the log as torn at that frame.
func TestCorruptPayloadCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := OpenWriter(path, 1, WriterOptions{Policy: SyncNone})
	if _, _, err := w.Commit(sampleRecords()[:1]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	buf, _ := os.ReadFile(path)
	buf[len(buf)-1] ^= 0xff
	os.WriteFile(path, buf, 0o644)
	res, err := ScanLog(path, nil, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail == nil || res.Tail.Kind != exec.KindRecovery {
		t.Fatalf("corrupt payload not classified as torn tail: %+v", res)
	}
}

func TestWriterTornWriteLatches(t *testing.T) {
	inj := fault.New(fault.Config{WALTornAfter: 10})
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWriter(path, 1, WriterOptions{Policy: SyncNone, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = w.Commit(sampleRecords()[:2])
	if err == nil {
		t.Fatal("torn write should fail the commit")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The writer is latched: later commits fail fast without writing.
	if _, _, err2 := w.Commit(sampleRecords()[:1]); err2 == nil {
		t.Fatal("latched writer accepted a commit")
	}
	w.Close()
	if inj.Stats().WALTornWrites != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
	// The torn 10-byte prefix is an invalid frame; recovery finds nothing.
	res, err := ScanLog(path, nil, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedBytes != 0 || res.Tail == nil {
		t.Fatalf("torn prefix should scan as empty+torn: %+v", res)
	}
}

func TestWriterFsyncFailureLatches(t *testing.T) {
	inj := fault.New(fault.Config{WALSyncFailAt: 1})
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWriter(path, 1, WriterOptions{Policy: SyncAlways, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Commit(sampleRecords()[:1]); err == nil {
		t.Fatal("fsync failure should fail the commit")
	}
	if w.Err() == nil {
		t.Fatal("writer should latch the fsync failure")
	}
	if _, _, err := w.Commit(sampleRecords()[:1]); err == nil {
		t.Fatal("latched writer accepted a commit")
	}
	if got := inj.Stats().WALSyncFailures; got != 1 {
		t.Fatalf("sync failures = %d, want 1", got)
	}
}

func TestSyncIntervalAmortizes(t *testing.T) {
	now := time.Unix(0, 0)
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWriter(path, 1, WriterOptions{
		Policy: SyncInterval, Interval: time.Second,
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, synced, err := w.Commit(sampleRecords()[:1]); err != nil || synced {
			t.Fatalf("commit %d before interval: synced=%v err=%v", i, synced, err)
		}
	}
	now = now.Add(2 * time.Second)
	if _, synced, err := w.Commit(sampleRecords()[:1]); err != nil || !synced {
		t.Fatalf("commit after interval: synced=%v err=%v", synced, err)
	}
	if w.Fsyncs() != 1 {
		t.Fatalf("fsyncs = %d, want 1", w.Fsyncs())
	}
	w.Close()
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("the catalog image")
	if err := WriteSnapshot(dir, 77, payload, nil); err != nil {
		t.Fatal(err)
	}
	got, lsn, found, err := ReadSnapshot(dir)
	if err != nil || !found {
		t.Fatalf("read: found=%v err=%v", found, err)
	}
	if lsn != 77 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: lsn=%d payload=%q", lsn, got)
	}
	// Overwrite is atomic: the new image fully replaces the old.
	if err := WriteSnapshot(dir, 78, []byte("newer"), nil); err != nil {
		t.Fatal(err)
	}
	got, lsn, _, _ = ReadSnapshot(dir)
	if lsn != 78 || string(got) != "newer" {
		t.Fatalf("second snapshot: lsn=%d payload=%q", lsn, got)
	}
}

func TestSnapshotMissing(t *testing.T) {
	_, _, found, err := ReadSnapshot(t.TempDir())
	if err != nil || found {
		t.Fatalf("missing snapshot: found=%v err=%v", found, err)
	}
}

// TestSnapshotTornTempWrite tears the checkpoint's temp-file write: the
// live snapshot must survive untouched and no temp file may linger.
func TestSnapshotTornTempWrite(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 5, []byte("good"), nil); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Config{WALSnapTornAfter: 4})
	if err := WriteSnapshot(dir, 6, []byte("torn-away"), inj); err == nil {
		t.Fatal("torn snapshot write should error")
	}
	if inj.Stats().WALSnapTorn != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
	got, lsn, found, err := ReadSnapshot(dir)
	if err != nil || !found || lsn != 5 || string(got) != "good" {
		t.Fatalf("old snapshot should survive: %q lsn=%d found=%v err=%v", got, lsn, found, err)
	}
	if _, serr := os.Stat(SnapshotPath(dir) + ".tmp"); !os.IsNotExist(serr) {
		t.Fatal("torn temp file left behind")
	}
}

// TestSnapshotCorruptionDetected covers every structural corruption of the
// snapshot file: all must return a typed KindRecovery error, never a panic.
func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 9, []byte("payload-bytes"), nil); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(SnapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mutate func([]byte) []byte) {
		buf := mutate(append([]byte(nil), full...))
		if err := os.WriteFile(SnapshotPath(dir), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, rerr := ReadSnapshot(dir)
		qe, ok := exec.AsQueryError(rerr)
		if !ok || qe.Kind != exec.KindRecovery {
			t.Fatalf("%s: want KindRecovery error, got %v", name, rerr)
		}
	}
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	check("flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	check("truncated payload", func(b []byte) []byte { return b[:len(b)-3] })
	check("truncated header", func(b []byte) []byte { return b[:6] })
}

func TestShortReadCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := OpenWriter(path, 1, WriterOptions{Policy: SyncNone})
	if _, _, err := w.Commit(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	inj := fault.New(fault.Config{WALReadLimit: 11})
	res, err := ScanLog(path, inj, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail == nil {
		t.Fatal("short read should surface as a torn tail")
	}
	if inj.Stats().WALShortReads != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
}

func TestTruncateLogDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := OpenWriter(path, 1, WriterOptions{Policy: SyncNone})
	w.Commit(sampleRecords()[:2])
	w.Close()
	res, _ := ScanLog(path, nil, func(*Record) error { return nil })
	keep := res.CommittedBytes
	// Append garbage, truncate back, rescan: clean again.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0xff, 0x01, 0x02})
	f.Close()
	if err := TruncateLog(path, keep); err != nil {
		t.Fatal(err)
	}
	res2, err := ScanLog(path, nil, func(*Record) error { return nil })
	if err != nil || res2.Tail != nil || res2.CommittedBytes != keep {
		t.Fatalf("after truncate: %+v err=%v", res2, err)
	}
}

// FuzzWALDecode asserts DecodeRecord never panics and, when it succeeds,
// the record re-encodes to the identical payload (a decode/encode fixpoint).
func FuzzWALDecode(f *testing.F) {
	for _, r := range sampleRecords() {
		r.LSN = 3
		if p, err := appendPayload(nil, r); err == nil {
			f.Add(p)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		re, err := appendPayload(nil, r)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not a fixpoint:\n in %x\nout %x", payload, re)
		}
	})
}
