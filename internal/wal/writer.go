package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"softdb/internal/fault"
)

// LogPath returns the WAL file path inside a data directory.
func LogPath(dir string) string { return filepath.Join(dir, "wal.log") }

// SyncPolicy selects when the writer fsyncs the log.
type SyncPolicy int

const (
	// SyncAlways fsyncs every commit — full durability, one fsync per
	// statement.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs a commit only when at least Interval has elapsed
	// since the last fsync, amortizing fsync cost across the serialized
	// write stream (group commit). A crash can lose up to Interval of
	// committed-in-memory statements; recovery still lands on a consistent
	// prefix.
	SyncInterval
	// SyncNone never fsyncs outside checkpoints and Close — fastest, for
	// tests and benchmarks that measure everything but the disk.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or none)", s)
	}
}

// WriterOptions configures a Writer.
type WriterOptions struct {
	Policy SyncPolicy
	// Interval is the minimum gap between fsyncs under SyncInterval.
	Interval time.Duration
	// Fault, when set, gates every append and fsync through the injector's
	// deterministic WAL sites.
	Fault *fault.Injector
	// Now is swappable for tests; defaults to time.Now.
	Now func() time.Time
}

// Writer appends record groups to the log. It is not safe for concurrent
// use; the engine serializes writers under its statement lock. The first
// write or fsync failure latches: the file tail past the last good commit
// must be considered garbage, so every later Commit fails fast with the
// same error and the engine degrades to read-only until restart (when
// recovery truncates back to the valid prefix).
type Writer struct {
	f        *os.File
	opts     WriterOptions
	nextLSN  uint64
	err      error
	lastSync time.Time

	bytes  int64 // total bytes appended
	fsyncs int64 // fsyncs performed
}

// OpenWriter opens (creating if needed) the log for appending. nextLSN is
// where LSN assignment resumes — one past the highest LSN recovery saw.
func OpenWriter(path string, nextLSN uint64, o WriterOptions) (*Writer, error) {
	if o.Now == nil {
		o.Now = time.Now
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &Writer{f: f, opts: o, nextLSN: nextLSN, lastSync: o.Now()}, nil
}

// NextLSN returns the LSN the next appended record will get.
func (w *Writer) NextLSN() uint64 { return w.nextLSN }

// Err returns the latched write failure, if any.
func (w *Writer) Err() error { return w.err }

// Bytes returns the total bytes appended over the writer's lifetime.
func (w *Writer) Bytes() int64 { return w.bytes }

// Fsyncs returns how many fsyncs the writer has performed.
func (w *Writer) Fsyncs() int64 { return w.fsyncs }

// encodeGroup assigns LSNs to recs and encodes them into one buffer. On
// encode failure the writer latches.
func (w *Writer) encodeGroup(recs []*Record) ([]byte, error) {
	var buf []byte
	var err error
	for _, r := range recs {
		r.LSN = w.nextLSN
		w.nextLSN++
		if buf, err = AppendRecord(buf, r); err != nil {
			w.err = err
			return nil, err
		}
	}
	return buf, nil
}

// write pushes an encoded buffer through the fault injector to the file.
func (w *Writer) write(buf []byte) (int64, error) {
	allowed, ferr := w.opts.Fault.WALWriteAllow(len(buf))
	if allowed > 0 {
		if _, werr := w.f.Write(buf[:allowed]); werr != nil && ferr == nil {
			ferr = werr
		}
	}
	w.bytes += int64(allowed)
	if ferr != nil {
		w.err = fmt.Errorf("wal: append: %w", ferr)
		return int64(allowed), w.err
	}
	return int64(allowed), nil
}

// policySync applies the sync policy after a terminator record landed.
func (w *Writer) policySync() (bool, error) {
	synced := false
	switch w.opts.Policy {
	case SyncAlways:
		synced = true
	case SyncInterval:
		synced = w.opts.Now().Sub(w.lastSync) >= w.opts.Interval
	}
	if synced {
		if err := w.Sync(); err != nil {
			return false, err
		}
	}
	return synced, nil
}

// Append assigns LSNs to recs and appends them as one buffered write with
// no terminator and no fsync — the streaming path for an open transaction's
// statements. The records stay invisible to recovery until a later
// CommitTxn closes the group.
func (w *Writer) Append(recs []*Record) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	buf, err := w.encodeGroup(recs)
	if err != nil {
		return 0, err
	}
	return w.write(buf)
}

// Commit assigns LSNs to recs, appends them plus a TypeCommit terminator
// as one buffered write, and applies the sync policy. It returns the bytes
// appended and whether an fsync ran. On failure the writer latches and the
// log tail is garbage until the next recovery.
func (w *Writer) Commit(recs []*Record) (int64, bool, error) {
	return w.CommitTxn(0, recs)
}

// CommitTxn is Commit with the terminator tagged by an explicit
// transaction's ID; recovery applies that transaction's streamed records
// when it sees the tagged commit. txnID 0 is the autocommit group path.
func (w *Writer) CommitTxn(txnID int64, recs []*Record) (int64, bool, error) {
	return w.terminate(&Record{Type: TypeCommit, TxnID: txnID}, recs)
}

// Abort appends a TypeAbort terminator for txnID and applies the sync
// policy. Recovery discards the transaction's streamed records; the abort
// record only re-establishes a consistent truncation boundary.
func (w *Writer) Abort(txnID int64) (int64, bool, error) {
	return w.terminate(&Record{Type: TypeAbort, TxnID: txnID}, nil)
}

func (w *Writer) terminate(term *Record, recs []*Record) (int64, bool, error) {
	if w.err != nil {
		return 0, false, w.err
	}
	buf, err := w.encodeGroup(recs)
	if err != nil {
		return 0, false, err
	}
	term.LSN = w.nextLSN
	w.nextLSN++
	if buf, err = AppendRecord(buf, term); err != nil {
		w.err = err
		return 0, false, err
	}
	pre := int64(-1)
	if st, serr := w.f.Stat(); serr == nil {
		pre = st.Size()
	}
	n, err := w.write(buf)
	if err != nil {
		return n, false, err
	}
	synced, err := w.policySync()
	if err != nil {
		// The terminator reached the OS but not the platter; the caller
		// will report the commit failed and roll back in memory, so a
		// later recovery must not replay it. Best effort, claw this
		// call's bytes back out of the file — the group reverts to an
		// unterminated stream, which recovery discards either way.
		if pre >= 0 {
			_ = w.f.Truncate(pre)
		}
		return n, false, err
	}
	return n, synced, nil
}

// Sync forces an fsync regardless of policy (checkpoints, clean shutdown).
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.opts.Fault.WALSync(); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	w.fsyncs++
	w.lastSync = w.opts.Now()
	return nil
}

// Truncate discards the log's contents after a successful checkpoint (the
// snapshot now covers everything). LSN assignment keeps counting.
func (w *Writer) Truncate() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("wal: truncate: %w", err)
		return w.err
	}
	// O_APPEND writes land at the (now zero) end of file; no seek needed.
	return w.Sync()
}

// Close fsyncs (best-effort when already failed) and closes the log.
func (w *Writer) Close() error {
	if w.err == nil {
		if err := w.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}
