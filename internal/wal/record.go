// Package wal implements softdb's write-ahead log and checkpoint files: a
// length-prefixed, CRC-checksummed redo log of row mutations, DDL text,
// and soft-constraint-registry images, plus the snapshot file a checkpoint
// writes.
//
// Framing: every record on disk is
//
//	[uvarint payloadLen] [4-byte big-endian CRC-32C of payload] [payload]
//
// and every payload is
//
//	[type byte] [uvarint LSN] [uvarint txnID] [type-specific body]
//
// built from the internal/wire/codec primitives, so a logged row image is
// byte-identical to the same row on the client wire. The CRC covers the
// payload only; a torn length prefix, a short payload, and a corrupt
// payload are all detected and classified as a torn tail by the reader.
//
// Durability protocol: an autocommit statement's records plus a TypeCommit
// terminator land as a single buffered write (group commit), fsync'd per
// the writer's SyncPolicy. Explicit transactions stream their statements'
// records (tagged with the transaction's ID) as they execute and close the
// group with a TypeCommit or TypeAbort carrying the same ID. Recovery
// buffers records per transaction ID and replays only groups closed by a
// commit record; aborted and unterminated groups are discarded, so a crash
// mid-transaction loses exactly the uncommitted work — never a committed
// prefix.
package wal

import (
	"fmt"
	"hash/crc32"

	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/wire/codec"
)

// Type tags a WAL record.
type Type byte

const (
	// TypeInsert logs one validated row appended to a table's heap.
	TypeInsert Type = 1
	// TypeUpdate logs an in-place row replacement at a RowID.
	TypeUpdate Type = 2
	// TypeDelete logs a tombstone at a RowID.
	TypeDelete Type = 3
	// TypeDDL logs a DDL/utility statement as SQL text plus whether it
	// succeeded pre-crash; replay re-executes it and must agree.
	TypeDDL Type = 4
	// TypeSoft logs a full image of the soft-constraint registry (the
	// catalog's mined/advisory state), emitted whenever the softc manager
	// mutates it outside a logged statement.
	TypeSoft Type = 5
	// TypeCommit closes a record group; recovery applies only closed groups.
	TypeCommit Type = 6
	// TypeTruncate logs a whole-table truncate (heap and indexes emptied).
	TypeTruncate Type = 7
	// TypeBegin marks the first write of an explicit transaction; purely
	// informational for log readers (recovery keys groups off record TxnIDs).
	TypeBegin Type = 8
	// TypeAbort closes a transaction's record group as rolled back; recovery
	// discards the group. Like TypeCommit it is a consistent boundary for
	// torn-tail truncation.
	TypeAbort Type = 9
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TypeInsert:
		return "insert"
	case TypeUpdate:
		return "update"
	case TypeDelete:
		return "delete"
	case TypeDDL:
		return "ddl"
	case TypeSoft:
		return "soft"
	case TypeCommit:
		return "commit"
	case TypeTruncate:
		return "truncate"
	case TypeBegin:
		return "begin"
	case TypeAbort:
		return "abort"
	default:
		return fmt.Sprintf("Type(%d)", byte(t))
	}
}

// Record is one redo-log entry. Which fields are meaningful depends on
// Type; unused fields stay zero and are not encoded.
type Record struct {
	// LSN is the record's log sequence number, assigned by the Writer in
	// strictly increasing order across the log's lifetime (checkpoints do
	// not reset it).
	LSN uint64
	// Type selects the body layout.
	Type Type
	// TxnID tags the record with its explicit transaction, or 0 for
	// autocommit/utility record groups. Recovery buffers records per TxnID
	// and applies a group only when its TypeCommit arrives.
	TxnID int64
	// Table names the target table (Insert/Update/Delete/Truncate).
	Table string
	// RID locates the row (Insert/Update/Delete). For inserts it records
	// the slot the live process appended to, so replay reproduces the heap
	// layout exactly — gaps left by aborted transactions included.
	RID storage.RowID
	// Row is the post-image (Insert/Update).
	Row types.Row
	// SQL is the statement text (DDL).
	SQL string
	// Applied records whether the DDL statement succeeded pre-crash (DDL).
	Applied bool
	// Blob is the serialized soft-constraint registry (Soft).
	Blob []byte
}

// castagnoli is the CRC-32C table shared by records and snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendPayload encodes r's payload (type byte + LSN + body) onto b.
func appendPayload(b []byte, r *Record) ([]byte, error) {
	b = append(b, byte(r.Type))
	b = codec.AppendUvarint(b, r.LSN)
	b = codec.AppendUvarint(b, uint64(r.TxnID))
	var err error
	switch r.Type {
	case TypeInsert:
		b = codec.AppendString(b, r.Table)
		b = codec.AppendVarint(b, int64(r.RID.Page))
		b = codec.AppendVarint(b, int64(r.RID.Slot))
		if b, err = codec.AppendRow(b, r.Row); err != nil {
			return nil, err
		}
	case TypeUpdate:
		b = codec.AppendString(b, r.Table)
		b = codec.AppendVarint(b, int64(r.RID.Page))
		b = codec.AppendVarint(b, int64(r.RID.Slot))
		if b, err = codec.AppendRow(b, r.Row); err != nil {
			return nil, err
		}
	case TypeDelete:
		b = codec.AppendString(b, r.Table)
		b = codec.AppendVarint(b, int64(r.RID.Page))
		b = codec.AppendVarint(b, int64(r.RID.Slot))
	case TypeDDL:
		b = codec.AppendString(b, r.SQL)
		b = codec.AppendBool(b, r.Applied)
	case TypeSoft:
		b = codec.AppendBytes(b, r.Blob)
	case TypeCommit, TypeBegin, TypeAbort:
	case TypeTruncate:
		b = codec.AppendString(b, r.Table)
	default:
		return nil, fmt.Errorf("wal: cannot encode record type %d", r.Type)
	}
	return b, nil
}

// AppendRecord encodes r with its frame (length prefix + CRC) onto b.
func AppendRecord(b []byte, r *Record) ([]byte, error) {
	payload, err := appendPayload(nil, r)
	if err != nil {
		return nil, err
	}
	b = codec.AppendUvarint(b, uint64(len(payload)))
	crc := crc32.Checksum(payload, castagnoli)
	b = append(b, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	return append(b, payload...), nil
}

// DecodeRecord decodes a record payload (the bytes the frame CRC covers).
// It never panics on corrupt input; it returns an error instead.
func DecodeRecord(payload []byte) (*Record, error) {
	d := codec.NewDecoder(payload)
	r := &Record{Type: Type(d.Byte("record type"))}
	r.LSN = d.Uvarint("record lsn")
	r.TxnID = int64(d.Uvarint("record txn id"))
	switch r.Type {
	case TypeInsert:
		r.Table = d.String("insert table")
		r.RID.Page = int32(d.Varint("insert page"))
		r.RID.Slot = int32(d.Varint("insert slot"))
		r.Row = d.Row("insert row")
	case TypeUpdate:
		r.Table = d.String("update table")
		r.RID.Page = int32(d.Varint("update page"))
		r.RID.Slot = int32(d.Varint("update slot"))
		r.Row = d.Row("update row")
	case TypeDelete:
		r.Table = d.String("delete table")
		r.RID.Page = int32(d.Varint("delete page"))
		r.RID.Slot = int32(d.Varint("delete slot"))
	case TypeDDL:
		r.SQL = d.String("ddl sql")
		r.Applied = d.Bool("ddl applied")
	case TypeSoft:
		r.Blob = d.Bytes("soft blob")
	case TypeCommit, TypeBegin, TypeAbort:
	case TypeTruncate:
		r.Table = d.String("truncate table")
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", byte(r.Type))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after %s record", d.Len(), r.Type)
	}
	return r, nil
}
