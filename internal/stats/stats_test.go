package stats

import (
	"math"
	"math/rand"
	"testing"

	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/storage"
	"softdb/internal/types"
)

func intHeap(vals []int64, nulls int) *storage.Heap {
	def := mustTable("t", schema.Column{Name: "v", Type: types.KindInt, Nullable: true})
	h := storage.NewHeap(def)
	for _, v := range vals {
		h.Insert(types.Row{types.NewInt(v)})
	}
	for i := 0; i < nulls; i++ {
		h.Insert(types.Row{types.Null})
	}
	return h
}

func TestCollectBasics(t *testing.T) {
	vals := make([]int64, 0, 1000)
	for i := 0; i < 1000; i++ {
		vals = append(vals, int64(i%100))
	}
	ts := Collect(intHeap(vals, 50), 16)
	cs := ts.Column("v")
	if cs == nil {
		t.Fatal("no stats for v")
	}
	if cs.RowCount != 1050 || cs.NullCount != 50 || cs.NDV != 100 {
		t.Errorf("counts: %s", cs)
	}
	if cs.Min.Int() != 0 || cs.Max.Int() != 99 {
		t.Errorf("min/max: %s", cs)
	}
	if cs.Hist == nil || cs.Hist.Buckets() == 0 || cs.Hist.Buckets() > 16 {
		t.Errorf("histogram buckets: %d", cs.Hist.Buckets())
	}
	if ts.Column("missing") != nil {
		t.Error("missing column yields nil")
	}
	if ts.Column("V") == nil {
		t.Error("lookup is case-insensitive")
	}
}

func TestMCVs(t *testing.T) {
	vals := []int64{7, 7, 7, 7, 7, 1, 2, 3, 9, 9}
	ts := Collect(intHeap(vals, 0), 8)
	cs := ts.Column("v")
	if len(cs.MCVs) == 0 || cs.MCVs[0].Value.Int() != 7 || cs.MCVs[0].Count != 5 {
		t.Errorf("mcvs: %v", cs.MCVs)
	}
	// Singleton values are not MCVs.
	for _, m := range cs.MCVs {
		if m.Count <= 1 {
			t.Errorf("singleton MCV: %v", m)
		}
	}
}

func TestSelectivityEq(t *testing.T) {
	vals := make([]int64, 0)
	for i := 0; i < 900; i++ {
		vals = append(vals, int64(i%90))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, 1000) // heavy hitter
	}
	ts := Collect(intHeap(vals, 0), 16)
	cs := ts.Column("v")
	// MCV hit: exact frequency.
	if got := cs.SelectivityEq(types.NewInt(1000)); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("MCV selectivity: %g", got)
	}
	// Non-MCV: roughly 1/NDV.
	got := cs.SelectivityEq(types.NewInt(5))
	want := 1.0 / float64(cs.NDV)
	if got < want/3 || got > want*3 {
		t.Errorf("eq selectivity: %g want ~%g", got, want)
	}
	// Out of range: zero.
	if cs.SelectivityEq(types.NewInt(99999)) != 0 {
		t.Error("out-of-range equality should be 0")
	}
	if cs.SelectivityEq(types.Null) != 0 {
		t.Error("NULL equality should be 0")
	}
}

func TestSelectivityInterval(t *testing.T) {
	vals := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		vals = append(vals, int64(i))
	}
	ts := Collect(intHeap(vals, 0), 32)
	cs := ts.Column("v")
	cases := []struct {
		iv   expr.Interval
		want float64
		tol  float64
	}{
		{expr.Between(types.NewInt(0), types.NewInt(999), true, true), 0.1, 0.03},
		{expr.Between(types.NewInt(2500), types.NewInt(7499), true, true), 0.5, 0.05},
		{expr.AtLeast(types.NewInt(9000), true), 0.1, 0.03},
		{expr.AtMost(types.NewInt(-5), true), 0, 0.01},
		{expr.Unbounded(), 1, 0.001},
	}
	for _, c := range cases {
		got := cs.SelectivityInterval(c.iv)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("interval %s: %g want %g±%g", c.iv, got, c.want, c.tol)
		}
	}
	if got := cs.SelectivityInterval(expr.Interval{ExactEmpty: true}); got != 0 {
		t.Errorf("empty interval: %g", got)
	}
}

func TestSelectivityIntervalSkewed(t *testing.T) {
	// 90% of mass at small values; the histogram should capture it.
	r := rand.New(rand.NewSource(8))
	vals := make([]int64, 0, 10000)
	for i := 0; i < 9000; i++ {
		vals = append(vals, int64(r.Intn(100)))
	}
	for i := 0; i < 1000; i++ {
		vals = append(vals, int64(100+r.Intn(9900)))
	}
	ts := Collect(intHeap(vals, 0), 32)
	cs := ts.Column("v")
	got := cs.SelectivityInterval(expr.AtMost(types.NewInt(99), true))
	if math.Abs(got-0.9) > 0.05 {
		t.Errorf("skewed selectivity: %g want ~0.9", got)
	}
}

func TestClusterRatio(t *testing.T) {
	asc := make([]int64, 1000)
	for i := range asc {
		asc[i] = int64(i)
	}
	ts := Collect(intHeap(asc, 0), 8)
	if cr := ts.Column("v").ClusterRatio; cr != 1 {
		t.Errorf("ascending cluster ratio: %g", cr)
	}
	r := rand.New(rand.NewSource(1))
	shuffled := append([]int64(nil), asc...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ts = Collect(intHeap(shuffled, 0), 8)
	if cr := ts.Column("v").ClusterRatio; cr < 0.3 || cr > 0.7 {
		t.Errorf("random cluster ratio: %g want ~0.5", cr)
	}
}

func mkEstimator(ts *TableStats) *Estimator {
	return &Estimator{Stats: ts, ColumnName: func(ord int) string {
		if ord == 0 {
			return "v"
		}
		return ""
	}}
}

func col0() *expr.Column { return expr.NewColumn("t", "v", 0, types.KindInt) }

func TestEstimatorCombinesSameColumnIntervals(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i)
	}
	est := mkEstimator(Collect(intHeap(vals, 0), 32))
	// v >= 1000 AND v < 2000 is one 10% range, not 1/3 * 1/3.
	conj := []expr.Expr{
		expr.NewBinary(expr.OpGe, col0(), expr.NewConst(types.NewInt(1000))),
		expr.NewBinary(expr.OpLt, col0(), expr.NewConst(types.NewInt(2000))),
	}
	got := est.Selectivity(conj)
	if math.Abs(got-0.1) > 0.03 {
		t.Errorf("combined range: %g want ~0.1", got)
	}
}

func TestEstimatorDefaultsWithoutStats(t *testing.T) {
	est := &Estimator{}
	eq := []expr.Expr{expr.Eq(col0(), expr.NewConst(types.NewInt(5)))}
	if got := est.Selectivity(eq); got != 0.1 {
		t.Errorf("default eq: %g", got)
	}
	rng := []expr.Expr{expr.NewBinary(expr.OpLt, col0(), expr.NewConst(types.NewInt(5)))}
	if got := est.Selectivity(rng); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("default range: %g", got)
	}
	if est.Selectivity(nil) != 1 {
		t.Error("no conjuncts: selectivity 1")
	}
}

func TestEstimatorIsNullUsesStats(t *testing.T) {
	vals := make([]int64, 900)
	est := mkEstimator(Collect(intHeap(vals, 100), 8))
	isNull := []expr.Expr{expr.NewUnary(expr.OpIsNull, col0())}
	if got := est.Selectivity(isNull); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("IS NULL: %g want 0.1", got)
	}
	isNotNull := []expr.Expr{expr.NewUnary(expr.OpIsNotNull, col0())}
	if got := est.Selectivity(isNotNull); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("IS NOT NULL: %g want 0.9", got)
	}
}

func TestSelectivityWithSSCs(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i)
	}
	est := mkEstimator(Collect(intHeap(vals, 0), 32))
	orig := []expr.Expr{expr.NewBinary(expr.OpGe, col0(), expr.NewConst(types.NewInt(0)))}
	twin := []EstimationPredicate{{
		Pred:       expr.NewBinary(expr.OpLt, col0(), expr.NewConst(types.NewInt(1000))),
		Confidence: 0.9,
		Source:     "ssc1",
	}}
	with := est.SelectivityWithSSCs(orig, twin)
	without := est.Selectivity(orig)
	if with >= without {
		t.Errorf("twin should tighten: %g vs %g", with, without)
	}
	// Confidence-weighted: sel*0.9 + (1-0.9)*base.
	expected := est.Selectivity(append(append([]expr.Expr(nil), orig...), twin[0].Pred))*0.9 + 0.1*without
	if math.Abs(with-expected) > 1e-9 {
		t.Errorf("adjustment: %g want %g", with, expected)
	}
	// No twins: passthrough.
	if est.SelectivityWithSSCs(orig, nil) != without {
		t.Error("no twins should equal plain selectivity")
	}
}

func TestBuildColumnStatsEmpty(t *testing.T) {
	cs := BuildColumnStats("x", types.KindInt, nil, 5, 8)
	if cs.RowCount != 5 || cs.NDV != 0 || !cs.Min.IsNull() {
		t.Errorf("empty column: %s", cs)
	}
	if got := cs.SelectivityInterval(expr.AtLeast(types.NewInt(0), true)); got == 0 {
		// With no histogram we fall back to the default, never 0.
		t.Errorf("no-histogram selectivity: %g", got)
	}
}

// Property: selectivity of an interval matches the true fraction within
// histogram error bounds on uniform data.
func TestSelectivityAccuracyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = int64(r.Intn(5000))
	}
	ts := Collect(intHeap(vals, 0), 32)
	cs := ts.Column("v")
	for trial := 0; trial < 100; trial++ {
		lo := int64(r.Intn(5000))
		hi := lo + int64(r.Intn(2000))
		iv := expr.Between(types.NewInt(lo), types.NewInt(hi), true, true)
		est := cs.SelectivityInterval(iv)
		actual := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				actual++
			}
		}
		af := float64(actual) / float64(len(vals))
		if math.Abs(est-af) > 0.05 {
			t.Fatalf("interval [%d,%d]: est %.4f actual %.4f", lo, hi, est, af)
		}
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
