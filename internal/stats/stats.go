// Package stats implements softdb's runtime statistics: per-column
// min/max, null counts, distinct-value estimates, equi-depth histograms,
// and most-common-value lists, plus the selectivity estimation the
// cost-based optimizer builds cardinality estimates from. It is the
// analogue of DB2's runstats catalog statistics that the paper's
// statistical soft constraints extend.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// DefaultBuckets is the histogram resolution used by Collect.
const DefaultBuckets = 32

// DefaultMCVs is how many most-common values are kept per column.
const DefaultMCVs = 10

// ValueFreq is one most-common-value entry.
type ValueFreq struct {
	Value types.Datum
	Count int64
}

// Histogram is an equi-depth histogram. Bucket i spans (LowerBound(i),
// UpperBounds[i]] with Counts[i] rows and Distinct[i] distinct values;
// LowerBound(0) is just below Min.
type Histogram struct {
	UpperBounds []types.Datum
	Counts      []int64
	Distinct    []int64
	Total       int64
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.UpperBounds) }

// ColumnStats summarizes one column.
type ColumnStats struct {
	Column    string
	Kind      types.Kind
	RowCount  int64
	NullCount int64
	NDV       int64 // distinct non-null values
	Min, Max  types.Datum
	Hist      *Histogram
	MCVs      []ValueFreq
	// ClusterRatio is the fraction of adjacent storage-order row pairs
	// whose values are non-decreasing — DB2's CLUSTERRATIO analogue. 1.0
	// means an index range scan on this column touches contiguous pages.
	ClusterRatio float64
}

// TableStats summarizes one table at a point in time.
type TableStats struct {
	Table    string
	RowCount int64
	Pages    int64
	Columns  map[string]*ColumnStats // keyed by lower-cased column name
	Version  int64                   // heap version the stats were collected at
}

// Column returns stats for the named column (case-insensitive), or nil.
func (ts *TableStats) Column(name string) *ColumnStats {
	if ts == nil {
		return nil
	}
	return ts.Columns[strings.ToLower(name)]
}

// Collect scans the heap and builds complete table statistics.
func Collect(heap *storage.Heap, buckets int) *TableStats {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	def := heap.Def()
	ts := &TableStats{
		Table:    def.Name,
		RowCount: heap.RowCount(),
		Pages:    heap.PageCount(),
		Columns:  make(map[string]*ColumnStats, len(def.Columns)),
		Version:  heap.Version(),
	}
	// Gather column values in one pass.
	values := make([][]types.Datum, len(def.Columns))
	nulls := make([]int64, len(def.Columns))
	heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		for i, d := range row {
			if d.IsNull() {
				nulls[i]++
			} else {
				values[i] = append(values[i], d)
			}
		}
		return true
	})
	for i, col := range def.Columns {
		cr := clusterRatio(values[i]) // values are still in storage order
		cs := buildColumnStats(col.Name, col.Type, values[i], nulls[i], buckets)
		cs.ClusterRatio = cr
		ts.Columns[strings.ToLower(col.Name)] = cs
	}
	return ts
}

// clusterRatio measures how well storage order agrees with value order.
func clusterRatio(vals []types.Datum) float64 {
	if len(vals) < 2 {
		return 1
	}
	asc := 0
	for i := 1; i < len(vals); i++ {
		if vals[i-1].Compare(vals[i]) <= 0 {
			asc++
		}
	}
	return float64(asc) / float64(len(vals)-1)
}

// BuildColumnStats computes statistics over the given non-null values.
// Exposed for miners and tests that already hold a value vector.
func BuildColumnStats(name string, kind types.Kind, vals []types.Datum, nullCount int64, buckets int) *ColumnStats {
	return buildColumnStats(name, kind, append([]types.Datum(nil), vals...), nullCount, buckets)
}

func buildColumnStats(name string, kind types.Kind, vals []types.Datum, nullCount int64, buckets int) *ColumnStats {
	cs := &ColumnStats{
		Column:    name,
		Kind:      kind,
		RowCount:  int64(len(vals)) + nullCount,
		NullCount: nullCount,
		Min:       types.Null,
		Max:       types.Null,
	}
	if len(vals) == 0 {
		return cs
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	cs.Min, cs.Max = vals[0], vals[len(vals)-1]

	// Distinct count and value frequencies in one sorted pass.
	type runFreq struct {
		v types.Datum
		n int64
	}
	var runs []runFreq
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j].Compare(vals[i]) == 0 {
			j++
		}
		runs = append(runs, runFreq{vals[i], int64(j - i)})
		i = j
	}
	cs.NDV = int64(len(runs))

	// MCVs: top DefaultMCVs by count, only if they are meaningfully common.
	byCount := append([]runFreq(nil), runs...)
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].n != byCount[j].n {
			return byCount[i].n > byCount[j].n
		}
		return byCount[i].v.Compare(byCount[j].v) < 0
	})
	for i := 0; i < len(byCount) && i < DefaultMCVs; i++ {
		if byCount[i].n <= 1 {
			break
		}
		cs.MCVs = append(cs.MCVs, ValueFreq{Value: byCount[i].v, Count: byCount[i].n})
	}

	// Equi-depth histogram over the sorted values.
	if buckets > len(runs) {
		buckets = len(runs)
	}
	if buckets > 0 {
		h := &Histogram{Total: int64(len(vals))}
		target := len(vals) / buckets
		if target < 1 {
			target = 1
		}
		count, distinct := int64(0), int64(0)
		for i, r := range runs {
			count += r.n
			distinct++
			if count >= int64(target) || i == len(runs)-1 {
				h.UpperBounds = append(h.UpperBounds, r.v)
				h.Counts = append(h.Counts, count)
				h.Distinct = append(h.Distinct, distinct)
				count, distinct = 0, 0
			}
		}
		cs.Hist = h
	}
	return cs
}

// nonNullFraction is the share of rows with a non-null value.
func (cs *ColumnStats) nonNullFraction() float64 {
	if cs.RowCount == 0 {
		return 0
	}
	return float64(cs.RowCount-cs.NullCount) / float64(cs.RowCount)
}

// SelectivityEq estimates the fraction of rows equal to v.
func (cs *ColumnStats) SelectivityEq(v types.Datum) float64 {
	if cs == nil || cs.RowCount == 0 {
		return defaultEqSelectivity
	}
	if v.IsNull() {
		return 0
	}
	nonNull := cs.RowCount - cs.NullCount
	if nonNull == 0 {
		return 0
	}
	for _, m := range cs.MCVs {
		if m.Value.Compare(v) == 0 {
			return float64(m.Count) / float64(cs.RowCount)
		}
	}
	if !cs.Min.IsNull() && (v.Compare(cs.Min) < 0 || v.Compare(cs.Max) > 0) {
		return 0
	}
	if cs.NDV > 0 {
		return 1 / float64(cs.NDV) * cs.nonNullFraction()
	}
	return defaultEqSelectivity
}

// SelectivityInterval estimates the fraction of rows whose value falls in iv
// using the histogram, assuming uniformity within buckets.
func (cs *ColumnStats) SelectivityInterval(iv expr.Interval) float64 {
	if iv.Empty() {
		return 0
	}
	if iv.IsUnbounded() {
		if cs == nil {
			return 1
		}
		return cs.nonNullFraction()
	}
	if iv.EqualityConstant != nil {
		return cs.SelectivityEq(*iv.EqualityConstant)
	}
	if cs == nil || cs.RowCount == 0 || cs.Hist == nil || cs.Hist.Total == 0 {
		return defaultRangeSelectivity
	}
	h := cs.Hist
	var covered float64
	lower := cs.Min
	for i, ub := range h.UpperBounds {
		bucket := expr.Between(lower, ub, i == 0, true)
		if bucket.Empty() {
			// Single-value bucket at the low edge.
			bucket = expr.Point(ub)
		}
		frac := overlapFraction(bucket, iv)
		covered += frac * float64(h.Counts[i])
		lower = ub
	}
	sel := covered / float64(cs.RowCount)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// overlapFraction estimates what fraction of the bucket's rows fall inside
// iv, interpolating linearly for numeric bounds and falling back to coarse
// fractions otherwise.
func overlapFraction(bucket, iv expr.Interval) float64 {
	x := bucket.Intersect(iv)
	if x.Empty() {
		return 0
	}
	if bucket.CoveredBy(iv) {
		return 1
	}
	// Interpolate numerically where possible.
	if bucket.HasLo && bucket.HasHi && bucket.Lo.IsNumeric() && bucket.Hi.IsNumeric() {
		blo, bhi := bucket.Lo.Float(), bucket.Hi.Float()
		width := bhi - blo
		if width <= 0 {
			return 1
		}
		xlo, xhi := blo, bhi
		if x.HasLo {
			xlo = x.Lo.Float()
		}
		if x.HasHi {
			xhi = x.Hi.Float()
		}
		f := (xhi - xlo) / width
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	return 0.5
}

// Default selectivities used when statistics are unavailable; the classic
// System R constants.
const (
	defaultEqSelectivity    = 0.1
	defaultRangeSelectivity = 1.0 / 3
	defaultNeSelectivity    = 0.9
	defaultOtherSelectivity = 1.0 / 3
)

// VirtualStat couples a virtual column's canonical expression with its
// collected distribution — §5.1's second mechanism for conveying SSC
// information to the optimizer.
type VirtualStat struct {
	// Canon is the expression's alias-insensitive rendering
	// (expr.Canonical over the bound expression).
	Canon string
	Stats *ColumnStats
}

// Estimator computes filter factors for predicate conjuncts over one
// table's rows using that table's statistics. EstimationPredicates are the
// paper's §5.1 "special predicates": they participate in selectivity
// estimation but are never applied to rows. Each carries the confidence of
// the SSC that generated it.
type Estimator struct {
	Stats *TableStats
	// ColumnName maps a bound ordinal to the column name in Stats.
	ColumnName func(ordinal int) string
	// Virtuals carries distribution statistics for expressions over the
	// table's columns; predicates whose non-constant side matches a
	// virtual column canonically are estimated from its histogram.
	Virtuals []VirtualStat
}

// EstimationPredicate is a predicate used only for cardinality estimation,
// twinned to an original predicate per §5.1.
type EstimationPredicate struct {
	Pred       expr.Expr
	Confidence float64 // fraction of rows for which the twinned form holds
	Source     string  // SSC name, for EXPLAIN
}

// Selectivity estimates the combined filter factor of the conjuncts,
// assuming independence across columns (the baseline the paper's SSCs
// improve upon). Interval-combinable conjuncts on the same column are
// folded first, so `a >= 5 AND a < 9` is one range, not two independent
// predicates.
func (e *Estimator) Selectivity(conjuncts []expr.Expr) float64 {
	if len(conjuncts) == 0 {
		return 1
	}
	sel := 1.0
	byColumn := map[int][]expr.Expr{}
	byVirtual := map[string][]expr.Interval{}
	var rest []expr.Expr
	for _, c := range conjuncts {
		cols := expr.ColumnIndexes(c)
		if len(cols) == 1 {
			byColumn[cols[0]] = append(byColumn[cols[0]], c)
			continue
		}
		// Multi-column predicate: try a virtual-column match (§5.1).
		if canon, iv, ok := e.virtualInterval(c); ok {
			byVirtual[canon] = append(byVirtual[canon], iv)
			continue
		}
		rest = append(rest, c)
	}
	cols := make([]int, 0, len(byColumn))
	for c := range byColumn {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, ord := range cols {
		sel *= e.columnSelectivity(ord, byColumn[ord])
	}
	vkeys := make([]string, 0, len(byVirtual))
	for k := range byVirtual {
		vkeys = append(vkeys, k)
	}
	sort.Strings(vkeys)
	for _, k := range vkeys {
		iv := expr.Unbounded()
		for _, part := range byVirtual[k] {
			iv = iv.Intersect(part)
		}
		sel *= e.virtualStats(k).SelectivityInterval(iv)
	}
	for _, c := range rest {
		sel *= e.singleSelectivity(c)
	}
	return clamp01(sel)
}

// virtualInterval matches a predicate against the registered virtual
// columns, returning the canonical key and the implied interval.
func (e *Estimator) virtualInterval(c expr.Expr) (string, expr.Interval, bool) {
	if len(e.Virtuals) == 0 {
		return "", expr.Interval{}, false
	}
	lhs, op, val, ok := expr.DecomposeComparison(c)
	if !ok {
		return "", expr.Interval{}, false
	}
	canon := expr.Canonical(lhs)
	if e.virtualStats(canon) == nil {
		return "", expr.Interval{}, false
	}
	iv, ok := expr.IntervalForOp(op, val)
	if !ok {
		return "", expr.Interval{}, false
	}
	return canon, iv, true
}

func (e *Estimator) virtualStats(canon string) *ColumnStats {
	for _, v := range e.Virtuals {
		if v.Canon == canon && v.Stats != nil {
			return v.Stats
		}
	}
	return nil
}

// SelectivityWithSSCs estimates selectivity after replacing original
// predicates with their twinned estimation predicates where that produces a
// tighter estimate, scaling by the SSC confidence. This implements the
// paper's §5.1 proposal: the twinned predicate is reduced to a range on a
// single column (where statistics are reliable) and the confidence factor
// bounds the error introduced by the rewrite.
func (e *Estimator) SelectivityWithSSCs(conjuncts []expr.Expr, twinned []EstimationPredicate) float64 {
	if len(twinned) == 0 {
		return e.Selectivity(conjuncts)
	}
	// The twinned predicates land on columns that already carry original
	// predicates; folding them into the same per-column interval replaces
	// the cross-column independence product with a single-column histogram
	// lookup on the column whose statistics are reliable.
	all := append([]expr.Expr(nil), conjuncts...)
	confidence := 1.0
	for _, tp := range twinned {
		all = append(all, tp.Pred)
		confidence *= tp.Confidence
	}
	sel := e.Selectivity(all)
	// The twin only holds for `confidence` of rows: rows outside the SSC
	// may still satisfy the original predicates, so the true selectivity is
	// bounded by sel*conf + (1-conf). We report the confidence-weighted
	// estimate, which is the paper's "statistical adjustment".
	adjusted := sel*confidence + (1-confidence)*e.Selectivity(conjuncts)
	return clamp01(adjusted)
}

func (e *Estimator) columnSelectivity(ord int, conjuncts []expr.Expr) float64 {
	iv, rest := expr.ExtractInterval(conjuncts, ord)
	sel := 1.0
	if !iv.IsUnbounded() {
		var cs *ColumnStats
		if e.ColumnName != nil && e.Stats != nil {
			cs = e.Stats.Column(e.ColumnName(ord))
		}
		sel = cs.SelectivityInterval(iv)
	}
	for _, c := range rest {
		sel *= e.singleSelectivity(c)
	}
	return sel
}

func (e *Estimator) singleSelectivity(c expr.Expr) float64 {
	switch n := c.(type) {
	case *expr.Binary:
		switch n.Op {
		case expr.OpEq:
			return defaultEqSelectivity
		case expr.OpNe:
			return defaultNeSelectivity
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return defaultRangeSelectivity
		case expr.OpOr:
			l := e.singleSelectivity(n.L)
			r := e.singleSelectivity(n.R)
			return clamp01(l + r - l*r)
		case expr.OpAnd:
			return e.singleSelectivity(n.L) * e.singleSelectivity(n.R)
		}
	case *expr.Unary:
		switch n.Op {
		case expr.OpIsNull:
			if col, ok := n.X.(*expr.Column); ok && e.Stats != nil && e.ColumnName != nil {
				if cs := e.Stats.Column(e.ColumnName(col.Index)); cs != nil && cs.RowCount > 0 {
					return float64(cs.NullCount) / float64(cs.RowCount)
				}
			}
			return 0.05
		case expr.OpIsNotNull:
			if col, ok := n.X.(*expr.Column); ok && e.Stats != nil && e.ColumnName != nil {
				if cs := e.Stats.Column(e.ColumnName(col.Index)); cs != nil && cs.RowCount > 0 {
					return 1 - float64(cs.NullCount)/float64(cs.RowCount)
				}
			}
			return 0.95
		case expr.OpNot:
			return clamp01(1 - e.singleSelectivity(n.X))
		}
	case *expr.InList:
		return clamp01(float64(len(n.List)) * defaultEqSelectivity)
	case *expr.Like:
		if n.Negate {
			return defaultNeSelectivity
		}
		return defaultEqSelectivity
	case *expr.Const:
		if expr.IsConstFalse(n) {
			return 0
		}
		return 1
	}
	return defaultOtherSelectivity
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// String renders a compact summary of column statistics.
func (cs *ColumnStats) String() string {
	if cs == nil {
		return "<no stats>"
	}
	return fmt.Sprintf("%s: rows=%d nulls=%d ndv=%d min=%s max=%s buckets=%d mcvs=%d",
		cs.Column, cs.RowCount, cs.NullCount, cs.NDV, cs.Min, cs.Max,
		func() int {
			if cs.Hist == nil {
				return 0
			}
			return cs.Hist.Buckets()
		}(), len(cs.MCVs))
}
