// Package workload builds the deterministic synthetic databases the
// benchmark harness and examples run against. Each generator reproduces the
// structural property a paper claim depends on: the ship/order date
// correlation with a late tail (§4.4), project durations (§5.1), a
// star schema with referential integrity ([6]), monthly range partitions
// (§5), and a join with planted holes ([8]). All generators are seeded and
// reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"softdb/internal/engine"
	"softdb/internal/types"
)

// BulkInsert loads rows through the engine's full insert pipeline
// (constraints, indexes, summary tables) without SQL parsing overhead.
func BulkInsert(db *engine.Database, table string, rows []types.Row) error {
	te, err := db.Catalog().Table(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		validated, err := te.Def.ValidateRow(r)
		if err != nil {
			return err
		}
		if err := db.InsertRow(te, validated); err != nil {
			return err
		}
	}
	return nil
}

// PurchaseConfig parameterizes the purchase generator.
type PurchaseConfig struct {
	N        int
	LateFrac float64 // fraction of shipments later than 21 days (0 for ASC)
	Seed     int64
	// ShipWindowMode declares the ship-window check constraint:
	// "" = none, "soft" = ASC, "ssc" = statistical (confidence set from
	// LateFrac), "informational", "enforced".
	ShipWindowMode string
	// IndexOrderDate creates the order_date index (the access path the
	// paper's rewrite unlocks).
	IndexOrderDate bool
}

// LoadPurchase creates and populates the paper's purchase table:
// ship_date = order_date + lag, lag uniform in [0, 20] except for a
// LateFrac tail with lag in [30, 90].
func LoadPurchase(db *engine.Database, cfg PurchaseConfig) error {
	mode := ""
	switch cfg.ShipWindowMode {
	case "soft":
		mode = "CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT,"
	case "ssc":
		// The three-week window is statistical (the late tail violates it);
		// "shipping never precedes ordering" is an external promise, so it
		// rides along as an informational constraint.
		conf := 1 - cfg.LateFrac
		mode = fmt.Sprintf(`CONSTRAINT ship_window CHECK (ship_date <= order_date + 21) SOFT STATISTICAL CONFIDENCE %.4f,
		CONSTRAINT ship_after_order CHECK (ship_date >= order_date) INFORMATIONAL,`, conf)
	case "informational":
		mode = "CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) INFORMATIONAL,"
	case "enforced":
		mode = "CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21),"
	}
	ddl := fmt.Sprintf(`CREATE TABLE purchase (
		id INT PRIMARY KEY,
		order_date DATE NOT NULL,
		ship_date DATE,
		amount FLOAT,
		%s
		CONSTRAINT amount_pos CHECK (amount >= 0) INFORMATIONAL
	)`, mode)
	if _, err := db.Exec(ddl); err != nil {
		return err
	}
	if cfg.IndexOrderDate {
		if _, err := db.Exec("CREATE INDEX idx_purchase_order_date ON purchase (order_date)"); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	base := int64(10592) // 1999-01-01 in days since epoch
	rows := make([]types.Row, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		// Orders arrive in rough date order (the realistic clustering the
		// optimizer's CLUSTERRATIO statistic exploits): 4 orders per day
		// with a little jitter.
		order := base + int64(i/4) + int64(r.Intn(3))
		lag := int64(r.Intn(21))
		if cfg.LateFrac > 0 && r.Float64() < cfg.LateFrac {
			lag = 30 + int64(r.Intn(61))
		}
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewDate(order),
			types.NewDate(order + lag),
			types.NewFloat(float64(r.Intn(10000)) / 100),
		})
	}
	if err := BulkInsert(db, "purchase", rows); err != nil {
		return err
	}
	_, err := db.Exec("ANALYZE purchase")
	return err
}

// ProjectConfig parameterizes the project generator (§5's example).
type ProjectConfig struct {
	N        int
	LongFrac float64 // fraction of projects longer than 30 days
	Seed     int64
	// Confidence declares the duration SSC; <= 0 skips the constraint.
	Confidence float64
}

// LoadProject creates project(id, start_date, end_date) where durations
// are mostly within 30 days with a LongFrac tail up to a year.
func LoadProject(db *engine.Database, cfg ProjectConfig) error {
	con := ""
	if cfg.Confidence > 0 {
		con = fmt.Sprintf(",\n\t\tCONSTRAINT duration CHECK (end_date <= start_date + 30) SOFT STATISTICAL CONFIDENCE %.4f", cfg.Confidence)
	}
	ddl := fmt.Sprintf(`CREATE TABLE project (
		id INT PRIMARY KEY,
		start_date DATE NOT NULL,
		end_date DATE%s
	)`, con)
	if _, err := db.Exec(ddl); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	base := int64(10592)
	span := int64(cfg.N/2 + 30)
	rows := make([]types.Row, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		start := base + int64(r.Int63n(span))
		dur := int64(r.Intn(31))
		if r.Float64() < cfg.LongFrac {
			dur = 31 + int64(r.Intn(335))
		}
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewDate(start),
			types.NewDate(start + dur),
		})
	}
	if err := BulkInsert(db, "project", rows); err != nil {
		return err
	}
	_, err := db.Exec("ANALYZE project")
	return err
}

// ActualActiveOn counts projects truly active on the given day offset from
// 1999-01-01, the ground truth for cardinality-estimation error.
func ActualActiveOn(db *engine.Database, dayOffset int64) (int64, error) {
	q := fmt.Sprintf(
		"SELECT COUNT(*) FROM project WHERE start_date <= DATE '1999-01-01' + %d AND end_date >= DATE '1999-01-01' + %d",
		dayOffset, dayOffset)
	rows, err := db.Query(q)
	if err != nil {
		return 0, err
	}
	return rows[0][0].Int(), nil
}

// StarConfig parameterizes the star-schema generator.
type StarConfig struct {
	DimRows  int
	FactRows int
	Seed     int64
	// FKMode is "enforced" or "informational" ([6] uses RI either way).
	FKMode string
}

// LoadStar creates dim(id, name, category) and fact(id, dim_id, qty,
// price) with referential integrity from fact to dim.
func LoadStar(db *engine.Database, cfg StarConfig) error {
	if _, err := db.Exec(`CREATE TABLE dim (
		id INT PRIMARY KEY, name VARCHAR(20), category INT)`); err != nil {
		return err
	}
	fkSuffix := ""
	if cfg.FKMode == "informational" {
		fkSuffix = " NOT ENFORCED"
	}
	ddl := fmt.Sprintf(`CREATE TABLE fact (
		id INT PRIMARY KEY,
		dim_id INT NOT NULL,
		qty INT,
		price FLOAT,
		FOREIGN KEY (dim_id) REFERENCES dim (id)%s)`, fkSuffix)
	if _, err := db.Exec(ddl); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	dimRows := make([]types.Row, 0, cfg.DimRows)
	for i := 0; i < cfg.DimRows; i++ {
		dimRows = append(dimRows, types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("dim-%d", i)),
			types.NewInt(int64(i % 17)),
		})
	}
	if err := BulkInsert(db, "dim", dimRows); err != nil {
		return err
	}
	factRows := make([]types.Row, 0, cfg.FactRows)
	for i := 0; i < cfg.FactRows; i++ {
		factRows = append(factRows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(r.Intn(cfg.DimRows))),
			types.NewInt(int64(1 + r.Intn(50))),
			types.NewFloat(float64(r.Intn(100000)) / 100),
		})
	}
	if err := BulkInsert(db, "fact", factRows); err != nil {
		return err
	}
	if _, err := db.Exec("ANALYZE dim"); err != nil {
		return err
	}
	_, err := db.Exec("ANALYZE fact")
	return err
}

// LoadPartitionedSales creates sales_01..sales_12, each with the month
// check constraint (§5's union-all view), rowsPerMonth rows each, and the
// sales view unioning them.
func LoadPartitionedSales(db *engine.Database, rowsPerMonth int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	for m := 1; m <= 12; m++ {
		ddl := fmt.Sprintf(`CREATE TABLE sales_%02d (
			month INT NOT NULL,
			day INT,
			amount FLOAT,
			CHECK (month = %d))`, m, m)
		if _, err := db.Exec(ddl); err != nil {
			return err
		}
		rows := make([]types.Row, 0, rowsPerMonth)
		for i := 0; i < rowsPerMonth; i++ {
			rows = append(rows, types.Row{
				types.NewInt(int64(m)),
				types.NewInt(int64(1 + r.Intn(28))),
				types.NewFloat(float64(r.Intn(50000)) / 100),
			})
		}
		if err := BulkInsert(db, fmt.Sprintf("sales_%02d", m), rows); err != nil {
			return err
		}
		if _, err := db.Exec(fmt.Sprintf("ANALYZE sales_%02d", m)); err != nil {
			return err
		}
	}
	var view strings.Builder
	view.WriteString("CREATE VIEW sales AS SELECT * FROM sales_01")
	for m := 2; m <= 12; m++ {
		fmt.Fprintf(&view, " UNION ALL SELECT * FROM sales_%02d", m)
	}
	_, err := db.Exec(view.String())
	return err
}

// HolesConfig parameterizes the orders⋈lineitem hole workload.
type HolesConfig struct {
	Orders   int
	LinesPer int
	Seed     int64
	// BandLo/BandHi plant a hole: no lineitem rows exist for orders whose
	// odate falls inside [BandLo, BandHi) (as an offset in days).
	BandLo, BandHi int
}

// LoadOrdersLineitem creates orders(okey, odate) and lineitem(okey,
// shipdate, qty) where shipdate tracks odate within 90 days; orders in the
// planted date band have no lineitems, producing a large join hole over
// (odate, shipdate).
func LoadOrdersLineitem(db *engine.Database, cfg HolesConfig) error {
	if _, err := db.Exec(`CREATE TABLE orders (okey INT PRIMARY KEY, odate DATE NOT NULL)`); err != nil {
		return err
	}
	if _, err := db.Exec(`CREATE TABLE lineitem (
		lkey INT PRIMARY KEY, okey INT NOT NULL, shipdate DATE, qty INT)`); err != nil {
		return err
	}
	if _, err := db.Exec("CREATE INDEX idx_orders_odate ON orders (odate)"); err != nil {
		return err
	}
	if _, err := db.Exec("CREATE INDEX idx_lineitem_shipdate ON lineitem (shipdate)"); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	base := int64(10592)
	orderRows := make([]types.Row, 0, cfg.Orders)
	var lineRows []types.Row
	lkey := 0
	for i := 0; i < cfg.Orders; i++ {
		// Orders arrive in date order (clustered), one per day.
		off := i
		odate := base + int64(off)
		orderRows = append(orderRows, types.Row{types.NewInt(int64(i)), types.NewDate(odate)})
		if off >= cfg.BandLo && off < cfg.BandHi {
			continue // hole band: no lineitems
		}
		for l := 0; l < cfg.LinesPer; l++ {
			lineRows = append(lineRows, types.Row{
				types.NewInt(int64(lkey)),
				types.NewInt(int64(i)),
				types.NewDate(odate + int64(r.Intn(90))),
				types.NewInt(int64(1 + r.Intn(10))),
			})
			lkey++
		}
	}
	if err := BulkInsert(db, "orders", orderRows); err != nil {
		return err
	}
	if err := BulkInsert(db, "lineitem", lineRows); err != nil {
		return err
	}
	if _, err := db.Exec("ANALYZE orders"); err != nil {
		return err
	}
	_, err := db.Exec("ANALYZE lineitem")
	return err
}

// LoadDenormalized creates the denormalized order table used by the FD
// experiments: order(id, cust_id, cust_name, region, amount) where cust_id
// determines cust_name and region.
func LoadDenormalized(db *engine.Database, n, customers int, seed int64) error {
	if _, err := db.Exec(`CREATE TABLE orders_wide (
		id INT PRIMARY KEY,
		cust_id INT NOT NULL,
		cust_name VARCHAR(24),
		region INT,
		amount FLOAT)`); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(seed))
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		c := r.Intn(customers)
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(c)),
			types.NewString(fmt.Sprintf("cust-%d", c)),
			types.NewInt(int64(c % 7)),
			types.NewFloat(float64(r.Intn(100000)) / 100),
		})
	}
	if err := BulkInsert(db, "orders_wide", rows); err != nil {
		return err
	}
	_, err := db.Exec("ANALYZE orders_wide")
	return err
}
