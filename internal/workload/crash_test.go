package workload_test

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"testing"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/types"
)

// The CI crash-recovery job (.github/workflows/ci.yml) runs these phases
// against an externally started durable softdbd:
//
//	write  — stream crashStatements over the wire; every statement is
//	         acknowledged before the next is sent.
//	noise  — stream extra inserts (keys >= noiseBase) until the server is
//	         kill -9'd out from under the connection, so the crash lands
//	         with a statement in flight.
//	verify — after the server restarts from the same data directory,
//	         replay the preload script plus crashStatements on an
//	         in-process engine and require the FNV-64 hash of a
//	         deterministic read stream to match over the wire.
//
// Acknowledged statements ran under -wal-sync=always, so recovery must
// reproduce them exactly; noise rows may or may not have survived and the
// verify reads exclude their key range.

const noiseBase = 2000000

func crashPhase(t *testing.T, phase string) string {
	t.Helper()
	addr := os.Getenv("SOFTDB_ADDR")
	if addr == "" || os.Getenv("SOFTDB_CRASH_PHASE") != phase {
		t.Skipf("SOFTDB_ADDR/SOFTDB_CRASH_PHASE=%s not set; crash phases only run in CI", phase)
	}
	return addr
}

// crashStatements is the deterministic acknowledged DML stream: inserts,
// soft-constraint-checked updates, deletes (leaving dead slots the
// recovered heap must reproduce), and a final ANALYZE.
func crashStatements() []string {
	var out []string
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		out = append(out, fmt.Sprintf("INSERT INTO crashkv VALUES (%d, %d, 'r%d')", i, r.Intn(1000), i))
	}
	for i := 0; i < 400; i += 7 {
		out = append(out, fmt.Sprintf("UPDATE crashkv SET v = v + 1 WHERE k = %d", i))
	}
	for i := 3; i < 400; i += 13 {
		out = append(out, fmt.Sprintf("DELETE FROM crashkv WHERE k = %d", i))
	}
	out = append(out, "ANALYZE crashkv")
	return out
}

// crashReads is the deterministic verification stream. Every statement
// filters to k <= 1000 so surviving noise rows cannot affect the hash.
func crashReads() []string {
	var out []string
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < 40; i++ {
		lo := r.Intn(380)
		out = append(out, fmt.Sprintf("SELECT k, v, s FROM crashkv WHERE k >= %d AND k <= %d", lo, lo+25))
		v := r.Intn(900)
		out = append(out, fmt.Sprintf("SELECT k FROM crashkv WHERE v >= %d AND v <= %d AND k <= 1000", v, v+50))
	}
	out = append(out, "SELECT k, v, s FROM crashkv WHERE k <= 1000")
	return out
}

// hashRows folds a result into a running FNV-64 hash; row order matters,
// which is the point — the recovered heap must reproduce physical order.
func hashRows(h interface{ Write([]byte) (int, error) }, cols []string, rows []types.Row) {
	for _, c := range cols {
		h.Write([]byte(c))
	}
	for _, row := range rows {
		for _, d := range row {
			h.Write([]byte(d.String()))
			h.Write([]byte{0})
		}
		h.Write([]byte{1})
	}
}

func TestCrashServerWritePhase(t *testing.T) {
	addr := crashPhase(t, "write")
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i, s := range crashStatements() {
		if _, err := c.Query(ctx, s); err != nil {
			t.Fatalf("statement %d (%s): %v", i, s, err)
		}
	}
}

func TestCrashServerNoisePhase(t *testing.T) {
	addr := crashPhase(t, "noise")
	c, err := client.Connect(addr)
	if err != nil {
		t.Logf("server already gone at connect: %v", err)
		return
	}
	defer c.Close()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < 200000 && time.Now().Before(deadline); i++ {
		_, err := c.Query(ctx, fmt.Sprintf(
			"INSERT INTO crashkv VALUES (%d, %d, 'noise')", noiseBase+i, i%1000))
		if err != nil {
			t.Logf("server went away after %d noise inserts: %v", i, err)
			return
		}
	}
	t.Log("noise phase hit its cap with the server still alive")
}

func TestCrashServerVerifyPhase(t *testing.T) {
	addr := crashPhase(t, "verify")
	script := os.Getenv("SOFTDB_CRASH_SCRIPT")
	if script == "" {
		t.Fatal("SOFTDB_CRASH_SCRIPT must point at the server's preload script")
	}
	src, err := os.ReadFile(script)
	if err != nil {
		t.Fatal(err)
	}

	// The never-crashed twin: preload plus the acknowledged write stream.
	db := engine.Open()
	if _, err := db.ExecScript(string(src)); err != nil {
		t.Fatalf("twin preload: %v", err)
	}
	for i, s := range crashStatements() {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("twin statement %d (%s): %v", i, s, err)
		}
	}
	local := fnv.New64a()
	reads := crashReads()
	for _, q := range reads {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("twin read %q: %v", q, err)
		}
		hashRows(local, res.Columns, res.Rows)
	}

	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote := fnv.New64a()
	ctx := context.Background()
	for _, q := range reads {
		res, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("remote read %q: %v", q, err)
		}
		hashRows(remote, res.Columns, res.Rows)
	}
	if local.Sum64() != remote.Sum64() {
		t.Fatalf("result-stream divergence after crash recovery: local fnv64=%016x remote fnv64=%016x over %d reads",
			local.Sum64(), remote.Sum64(), len(reads))
	}
	t.Logf("parity: fnv64=%016x over %d reads", local.Sum64(), len(reads))
}
