package workload_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"softdb/internal/client"
	"softdb/internal/exec"
	"softdb/internal/workload"
)

// TestRouterEnvSmoke drives an externally started softdb-router (the CI
// shard-smoke job): SOFTDB_ROUTER_ADDR points at a router fronting two
// softdbd shards with `-partition "kv=range(k:300)"`, `-partition
// "events=range(k:300)"`, and `-track events.v`. The test seeds both
// tables through the router (DDL fans out, DML routes by key), syncs the
// constraint registry, proves a predicate on the tracked non-partition
// column prunes down to one shard, and then runs the concurrent driver
// mix against the cluster.
func TestRouterEnvSmoke(t *testing.T) {
	addr := os.Getenv("SOFTDB_ROUTER_ADDR")
	if addr == "" {
		t.Skip("SOFTDB_ROUTER_ADDR not set; router smoke only runs in CI")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := client.ConnectTimeout(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(ctx, "CREATE TABLE kv (k INT NOT NULL, v STRING)"); err != nil {
		t.Fatal(err)
	}
	var vals []string
	flush := func() {
		if len(vals) == 0 {
			return
		}
		if _, err := c.Query(ctx, "INSERT INTO kv VALUES "+strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
		vals = vals[:0]
	}
	for i := 0; i < 600; i++ {
		vals = append(vals, fmt.Sprintf("(%d, '%c')", i, 'a'+byte(i%3)))
		if len(vals) == 100 {
			flush()
		}
	}
	flush()
	// The events table carries the tracked non-partition column v (the
	// router runs with -track events.v): after ROUTER SYNC each shard's
	// v-range is a registry entry backed by a shard-side soft CHECK, so a
	// v-predicate prunes shards the way partition routing prunes on k.
	if _, err := c.Query(ctx, "CREATE TABLE events (k INT NOT NULL, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i))
		if len(vals) == 100 {
			if _, err := c.Query(ctx, "INSERT INTO events VALUES "+strings.Join(vals, ", ")); err != nil {
				t.Fatal(err)
			}
			vals = vals[:0]
		}
	}
	if _, err := c.Query(ctx, "ROUTER SYNC"); err != nil {
		t.Fatalf("ROUTER SYNC: %v", err)
	}
	// With events range-partitioned at k=300 and v=k, shard 0's synced
	// v-range is [0,299]: the upper band must registry-prune it.
	res, err := c.Query(ctx, "EXPLAIN SELECT k, v FROM events WHERE v >= 450 AND v <= 470")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		plan.WriteString(r[0].Str())
		plan.WriteByte('\n')
	}
	t.Logf("explain:\n%s", plan.String())
	if !strings.Contains(plan.String(), "router: shards=1/2 pruned=1") {
		t.Fatalf("upper-band predicate did not prune to one shard:\n%s", plan.String())
	}

	rep, err := workload.RunDriver(workload.DriverConfig{
		Addr:         addr,
		Clients:      8,
		OpsPerClient: 25,
		Seed:         7,
		Timeout:      30 * time.Second,
		Statement:    mixStatement,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted.N+rep.Shed != rep.Requests {
		t.Fatalf("request accounting: %+v", rep)
	}
	if len(rep.ErrKinds) > 0 {
		t.Fatalf("router run errored: %+v", rep.ErrKinds)
	}
	if rep.Rows == 0 {
		t.Fatalf("router returned no rows: %+v", rep)
	}
	t.Logf("router: %.0f stmt/s, accepted %s", rep.Throughput, rep.Accepted)
}

// TestRouterEnvShardDown runs after the CI job kills one shard: broadcast
// statements must fail fast with the typed shard-unreachable error while
// statements routed to the surviving shard keep working. Gated separately
// so the healthy-cluster smoke above can run first.
func TestRouterEnvShardDown(t *testing.T) {
	addr := os.Getenv("SOFTDB_ROUTER_ADDR")
	if addr == "" || os.Getenv("SOFTDB_ROUTER_SHARD_DOWN") == "" {
		t.Skip("SOFTDB_ROUTER_ADDR/SOFTDB_ROUTER_SHARD_DOWN not set; shard-down smoke only runs in CI")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := client.ConnectTimeout(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The CI job killed the second shard (k >= 300 under the range spec).
	// A broadcast must report shard-unreachable without hanging.
	start := time.Now()
	_, err = c.Query(ctx, "SELECT COUNT(*) AS n FROM kv")
	if kind := client.Kind(err); kind != exec.KindShardUnreachable {
		t.Fatalf("broadcast with a dead shard: kind %q err %v, want %q", kind, err, exec.KindShardUnreachable)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("shard-unreachable took %v; the router is hanging on the dead shard", d)
	}
	// The surviving shard still serves its key range.
	res, err := c.Query(ctx, "SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatalf("point query to the live shard: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("live shard returned %d rows, want 1", len(res.Rows))
	}
}
