package workload_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/server"
	"softdb/internal/workload"
)

// mixStatement is a small read-mostly mix over the kv table the tests
// (and the CI smoke script) seed.
func mixStatement(c, op int, r *rand.Rand) string {
	if op%10 == 9 {
		return fmt.Sprintf("INSERT INTO kv VALUES (%d, 'w')", 1000000+c*10000+op)
	}
	lo := r.Intn(500)
	return fmt.Sprintf("SELECT k, v FROM kv WHERE k >= %d AND k <= %d", lo, lo+20)
}

func seedKV(t *testing.T, db *engine.Database) {
	t.Helper()
	db.MustExec("CREATE TABLE kv (k INT NOT NULL, v STRING)")
	for i := 0; i < 600; i += 3 {
		db.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'a'), (%d, 'b'), (%d, 'c')", i, i+1, i+2))
	}
	db.MustExec("ANALYZE kv")
}

// TestDriverAgainstServer runs the concurrent driver against an
// in-process server and sanity-checks the report.
func TestDriverAgainstServer(t *testing.T) {
	db := engine.Open()
	seedKV(t, db)
	s := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	rep, err := workload.RunDriver(workload.DriverConfig{
		Addr:         addr.String(),
		Clients:      8,
		OpsPerClient: 20,
		Seed:         42,
		Timeout:      10 * time.Second,
		Statement:    mixStatement,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 160 {
		t.Fatalf("requests: %d", rep.Requests)
	}
	if len(rep.ErrKinds) > 0 || rep.Shed != 0 {
		t.Fatalf("clean run should not error or shed: %+v", rep)
	}
	if rep.Accepted.N != 160 || rep.Rows == 0 || rep.Throughput <= 0 {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	if rep.Accepted.P50 > rep.Accepted.P99 || rep.Accepted.P99 > rep.Accepted.Max {
		t.Fatalf("latency summary out of order: %v", rep.Accepted)
	}
	// Determinism of the statement streams: same seed, same rows back.
	rep2, err := workload.RunDriver(workload.DriverConfig{
		Addr:         addr.String(),
		Clients:      8,
		OpsPerClient: 20,
		Seed:         42,
		Statement: func(c, op int, r *rand.Rand) string {
			lo := r.Intn(500)
			return fmt.Sprintf("SELECT k, v FROM kv WHERE k >= %d AND k <= %d", lo, lo+20)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := workload.RunDriver(workload.DriverConfig{
		Addr:         addr.String(),
		Clients:      8,
		OpsPerClient: 20,
		Seed:         42,
		Statement: func(c, op int, r *rand.Rand) string {
			lo := r.Intn(500)
			return fmt.Sprintf("SELECT k, v FROM kv WHERE k >= %d AND k <= %d", lo, lo+20)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Rows != rep3.Rows {
		t.Fatalf("seeded read-only runs should return identical row counts: %d vs %d", rep2.Rows, rep3.Rows)
	}
}

// TestDriverSessionSetup: SetupConn applies per-connection session
// settings before the stream starts.
func TestDriverSessionSetup(t *testing.T) {
	db := engine.Open()
	seedKV(t, db)
	s := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	_, err = workload.RunDriver(workload.DriverConfig{
		Addr:         addr.String(),
		Clients:      2,
		OpsPerClient: 4,
		Seed:         1,
		Statement:    mixStatement,
		SetupConn:    func(c *client.Conn) error { return c.Set("prune", "off") },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A failing setup aborts the run.
	_, err = workload.RunDriver(workload.DriverConfig{
		Addr:         addr.String(),
		Clients:      1,
		OpsPerClient: 1,
		Statement:    mixStatement,
		SetupConn:    func(c *client.Conn) error { return c.Set("bogus", "1") },
	})
	if err == nil {
		t.Fatal("bad SetupConn should abort the run")
	}
}

// TestDriverEnvServer drives an externally started softdbd (the CI
// server-smoke job): SOFTDB_ADDR points at a server whose preload script
// created the kv table.
func TestDriverEnvServer(t *testing.T) {
	addr := os.Getenv("SOFTDB_ADDR")
	if addr == "" {
		t.Skip("SOFTDB_ADDR not set; external-server smoke only runs in CI")
	}
	rep, err := workload.RunDriver(workload.DriverConfig{
		Addr:         addr,
		Clients:      8,
		OpsPerClient: 25,
		Seed:         7,
		Timeout:      30 * time.Second,
		Statement:    mixStatement,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted.N+rep.Shed != rep.Requests {
		t.Fatalf("request accounting: %+v", rep)
	}
	if rep.Rows == 0 {
		t.Fatalf("external server returned no rows: %+v", rep)
	}
	t.Logf("external server: %.0f stmt/s, accepted %s", rep.Throughput, rep.Accepted)
}
