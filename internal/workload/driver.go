package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"softdb/internal/client"
	"softdb/internal/exec"
)

// DriverConfig parameterizes a concurrent-client run against a softdb
// server: N clients, each executing a deterministic per-client statement
// stream over its own wire connection.
type DriverConfig struct {
	// Addr is the server's wire-protocol address.
	Addr string
	// Clients is the number of concurrent connections.
	Clients int
	// OpsPerClient is how many statements each client executes.
	OpsPerClient int
	// Seed makes every client's statement stream deterministic (client i
	// derives its own rng from Seed+i).
	Seed int64
	// Timeout, when nonzero, is the per-statement context deadline.
	Timeout time.Duration
	// Statement produces client c's op'th statement; r is that client's
	// seeded rng. Required.
	Statement func(c, op int, r *rand.Rand) string
	// SetupConn, when non-nil, runs once per connection before the
	// stream starts (session settings and the like).
	SetupConn func(c *client.Conn) error
}

// LatencySummary condenses one latency population.
type LatencySummary struct {
	N             int
	P50, P95, P99 time.Duration
	Max           time.Duration
}

func summarize(lats []time.Duration) LatencySummary {
	s := LatencySummary{N: len(lats)}
	if len(lats) == 0 {
		return s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	s.P50, s.P95, s.P99 = pick(0.50), pick(0.95), pick(0.99)
	s.Max = lats[len(lats)-1]
	return s
}

// String renders the summary for reports.
func (s LatencySummary) String() string {
	return fmt.Sprintf("p50=%s p95=%s p99=%s max=%s (n=%d)",
		s.P50.Round(10*time.Microsecond), s.P95.Round(10*time.Microsecond),
		s.P99.Round(10*time.Microsecond), s.Max.Round(10*time.Microsecond), s.N)
}

// DriverReport is one driver run's outcome. Accepted statements (those
// the server executed, successfully or not) and shed statements keep
// separate latency populations: the point of load shedding is that the
// shed ones fail much faster than the accepted ones complete.
type DriverReport struct {
	Requests int
	Rows     int64
	Shed     int
	// ErrKinds counts non-busy failures by exec.ErrKind.
	ErrKinds map[string]int
	Elapsed  time.Duration
	// Throughput is accepted-and-succeeded statements per second.
	Throughput float64
	Accepted   LatencySummary
	ShedLat    LatencySummary
}

// RunDriver connects cfg.Clients connections and runs the statement
// streams concurrently. Connection-level failures (dial errors, broken
// streams) abort the run; statement-level errors are tallied.
func RunDriver(cfg DriverConfig) (*DriverReport, error) {
	if cfg.Statement == nil {
		return nil, errors.New("workload: DriverConfig.Statement is required")
	}
	conns := make([]*client.Conn, cfg.Clients)
	for i := range conns {
		c, err := client.Connect(cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("workload: client %d: %w", i, err)
		}
		defer c.Close()
		if cfg.SetupConn != nil {
			if err := cfg.SetupConn(c); err != nil {
				return nil, fmt.Errorf("workload: client %d setup: %w", i, err)
			}
		}
		conns[i] = c
	}

	type tally struct {
		rows         int64
		ok, shed     int
		errKinds     map[string]int
		acceptedLats []time.Duration
		shedLats     []time.Duration
		transportErr error
	}
	tallies := make([]tally, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl := &tallies[i]
			tl.errKinds = map[string]int{}
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			for op := 0; op < cfg.OpsPerClient; op++ {
				stmt := cfg.Statement(i, op, r)
				ctx := context.Background()
				var cancel context.CancelFunc
				if cfg.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				}
				t0 := time.Now()
				res, err := conns[i].Query(ctx, stmt)
				lat := time.Since(t0)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					tl.ok++
					tl.rows += int64(len(res.Rows))
					tl.acceptedLats = append(tl.acceptedLats, lat)
				case errors.Is(err, client.ErrConnBroken):
					tl.transportErr = err
					return
				case client.Kind(err) == exec.KindBusy:
					tl.shed++
					tl.shedLats = append(tl.shedLats, lat)
				default:
					// Executed-and-failed still measures server latency.
					tl.errKinds[string(client.Kind(err))]++
					tl.acceptedLats = append(tl.acceptedLats, lat)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &DriverReport{ErrKinds: map[string]int{}, Elapsed: elapsed}
	var accepted, shed []time.Duration
	var ok int
	for i := range tallies {
		tl := &tallies[i]
		if tl.transportErr != nil {
			return nil, fmt.Errorf("workload: client %d: %w", i, tl.transportErr)
		}
		ok += tl.ok
		rep.Rows += tl.rows
		rep.Shed += tl.shed
		for k, n := range tl.errKinds {
			rep.ErrKinds[k] += n
		}
		accepted = append(accepted, tl.acceptedLats...)
		shed = append(shed, tl.shedLats...)
	}
	rep.Requests = cfg.Clients * cfg.OpsPerClient
	rep.Throughput = float64(ok) / elapsed.Seconds()
	rep.Accepted = summarize(accepted)
	rep.ShedLat = summarize(shed)
	return rep, nil
}
