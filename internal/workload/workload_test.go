package workload

import (
	"testing"

	"softdb/internal/engine"
)

func TestLoadPurchaseShape(t *testing.T) {
	db := engine.Open()
	if err := LoadPurchase(db, PurchaseConfig{N: 2000, LateFrac: 0.05, Seed: 1, ShipWindowMode: "ssc", IndexOrderDate: true}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT COUNT(*) FROM purchase")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 2000 {
		t.Errorf("rows: %v", rows[0])
	}
	// The late fraction is approximately respected.
	late, _ := db.Query("SELECT COUNT(*) FROM purchase WHERE ship_date > order_date + 21")
	frac := float64(late[0][0].Int()) / 2000
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("late fraction: %.3f", frac)
	}
	// Determinism: same seed, same data.
	db2 := engine.Open()
	if err := LoadPurchase(db2, PurchaseConfig{N: 2000, LateFrac: 0.05, Seed: 1, ShipWindowMode: "ssc", IndexOrderDate: true}); err != nil {
		t.Fatal(err)
	}
	late2, _ := db2.Query("SELECT COUNT(*) FROM purchase WHERE ship_date > order_date + 21")
	if late[0][0].Int() != late2[0][0].Int() {
		t.Error("generator must be deterministic")
	}
	// Clustering: order_date should be near-sorted in storage order.
	te, _ := db.Catalog().Table("purchase")
	if cr := te.Stats.Column("order_date").ClusterRatio; cr < 0.65 {
		t.Errorf("order_date cluster ratio: %g", cr)
	}
}

func TestLoadProjectShape(t *testing.T) {
	db := engine.Open()
	if err := LoadProject(db, ProjectConfig{N: 1000, LongFrac: 0.1, Seed: 2, Confidence: 0.9}); err != nil {
		t.Fatal(err)
	}
	long, _ := db.Query("SELECT COUNT(*) FROM project WHERE end_date > start_date + 30")
	frac := float64(long[0][0].Int()) / 1000
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("long fraction: %.3f", frac)
	}
	if db.Catalog().ConstraintByName("duration") == nil {
		t.Error("duration SSC should be declared")
	}
	n, err := ActualActiveOn(db, 250)
	if err != nil || n <= 0 {
		t.Errorf("active count: %d %v", n, err)
	}
}

func TestLoadStarRI(t *testing.T) {
	db := engine.Open()
	if err := LoadStar(db, StarConfig{DimRows: 50, FactRows: 500, Seed: 3, FKMode: "enforced"}); err != nil {
		t.Fatal(err)
	}
	// Enforced FK: inserting an orphan fails.
	if _, err := db.Exec("INSERT INTO fact VALUES (99999, 7777, 1, 1.0)"); err == nil {
		t.Error("orphan insert should fail under enforced RI")
	}
	db2 := engine.Open()
	if err := LoadStar(db2, StarConfig{DimRows: 50, FactRows: 500, Seed: 3, FKMode: "informational"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("INSERT INTO fact VALUES (99999, 7777, 1, 1.0)"); err != nil {
		t.Error("informational RI is never checked")
	}
}

func TestLoadPartitionedSales(t *testing.T) {
	db := engine.Open()
	if err := LoadPartitionedSales(db, 100, 4); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 1200 {
		t.Errorf("view rows: %v", rows[0])
	}
	// Partition checks are enforced: wrong month is rejected.
	if _, err := db.Exec("INSERT INTO sales_03 VALUES (4, 1, 1.0)"); err == nil {
		t.Error("partition check should reject wrong month")
	}
}

func TestLoadOrdersLineitemBand(t *testing.T) {
	db := engine.Open()
	if err := LoadOrdersLineitem(db, HolesConfig{Orders: 400, LinesPer: 2, Seed: 5, BandLo: 100, BandHi: 200}); err != nil {
		t.Fatal(err)
	}
	// No lineitems exist for orders in the band.
	rows, err := db.Query(`SELECT COUNT(*) FROM orders o, lineitem l
		WHERE o.okey = l.okey AND o.odate >= DATE '1999-01-01' + 100 AND o.odate < DATE '1999-01-01' + 200`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 0 {
		t.Errorf("band should be empty: %v", rows[0])
	}
	total, _ := db.Query("SELECT COUNT(*) FROM lineitem")
	if total[0][0].Int() != int64((400-100)*2) {
		t.Errorf("lineitem rows: %v", total[0])
	}
}

func TestLoadDenormalizedFDs(t *testing.T) {
	db := engine.Open()
	if err := LoadDenormalized(db, 500, 20, 6); err != nil {
		t.Fatal(err)
	}
	// cust_id functionally determines cust_name by construction: one name
	// per customer id.
	rows, err := db.Query("SELECT DISTINCT cust_id, cust_name FROM orders_wide")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Errorf("distinct (cust_id, cust_name) pairs: %d", len(rows))
	}
}
