package txn

import (
	"sync"
	"testing"
)

func TestManagerSnapshotAndCommitClock(t *testing.T) {
	m := NewManager()
	if got := m.Snapshot(); got != 1 {
		t.Fatalf("fresh clock = %d, want 1 (storage.CommittedMin)", got)
	}
	ts := m.PrepareCommit()
	if ts != 2 {
		t.Fatalf("PrepareCommit = %d, want 2", ts)
	}
	// Reserved but unpublished: snapshots must not include it.
	if got := m.Snapshot(); got != 1 {
		t.Fatalf("snapshot after PrepareCommit = %d, want 1 (commit not yet published)", got)
	}
	m.Publish(ts)
	if got := m.Snapshot(); got != ts {
		t.Fatalf("snapshot after Publish = %d, want %d", got, ts)
	}
}

func TestManagerBeginFinishAndActiveWrites(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if a.ID == b.ID || a.ID <= 0 || b.ID <= 0 {
		t.Fatalf("transaction IDs must be unique and positive: %d, %d", a.ID, b.ID)
	}
	if a.Snap != m.Snapshot() {
		t.Fatalf("Begin snapshot = %d, want current clock %d", a.Snap, m.Snapshot())
	}
	if got := m.ActiveWrites(); got != 2 {
		t.Fatalf("ActiveWrites = %d, want 2", got)
	}
	m.Finish(a)
	m.Finish(b)
	m.Finish(nil) // must be a no-op
	if got := m.ActiveWrites(); got != 0 {
		t.Fatalf("ActiveWrites after Finish = %d, want 0", got)
	}
}

func TestManagerHorizonTracksOldestPin(t *testing.T) {
	m := NewManager()
	old := m.Snapshot()
	m.Pin(old)
	m.Pin(old) // two readers on the same snapshot
	ts := m.PrepareCommit()
	m.Publish(ts)
	if got := m.Horizon(); got != old {
		t.Fatalf("Horizon with pinned old snapshot = %d, want %d", got, old)
	}
	m.Unpin(old)
	if got := m.Horizon(); got != old {
		t.Fatalf("Horizon with one pin remaining = %d, want %d", got, old)
	}
	m.Unpin(old)
	if got := m.Horizon(); got != ts {
		t.Fatalf("Horizon with no pins = %d, want current clock %d", got, ts)
	}
	// An open write transaction pins its snapshot too.
	tx := m.Begin()
	ts2 := m.PrepareCommit()
	m.Publish(ts2)
	if got := m.Horizon(); got != tx.Snap {
		t.Fatalf("Horizon with open txn = %d, want its snapshot %d", got, tx.Snap)
	}
	m.Finish(tx)
	if got := m.Horizon(); got != ts2 {
		t.Fatalf("Horizon after Finish = %d, want %d", got, ts2)
	}
}

func TestManagerSeedIDs(t *testing.T) {
	m := NewManager()
	m.SeedIDs(40)
	if tx := m.Begin(); tx.ID != 41 {
		t.Fatalf("ID after SeedIDs(40) = %d, want 41", tx.ID)
	}
	m.SeedIDs(10) // seeding backwards must never reuse IDs
	if tx := m.Begin(); tx.ID != 42 {
		t.Fatalf("ID after backwards seed = %d, want 42", tx.ID)
	}
}

func TestManagerConcurrentHandout(t *testing.T) {
	m := NewManager()
	const goroutines = 8
	const perG = 200
	ids := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tx := m.Begin()
				ids[g] = append(ids[g], tx.ID)
				snap := m.Snapshot()
				m.Pin(snap)
				m.Unpin(snap)
				m.Finish(tx)
			}
		}(g)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, chunk := range ids {
		for _, id := range chunk {
			if seen[id] {
				t.Fatalf("duplicate transaction ID %d", id)
			}
			seen[id] = true
		}
	}
	if got := m.ActiveWrites(); got != 0 {
		t.Fatalf("ActiveWrites after drain = %d, want 0", got)
	}
	if got, want := m.Horizon(), m.Snapshot(); got != want {
		t.Fatalf("Horizon after drain = %d, want clock %d", got, want)
	}
}
