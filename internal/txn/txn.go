// Package txn implements softdb's transaction manager: a monotonic commit
// clock, snapshot handout, and the bookkeeping MVCC needs around it (which
// transactions hold write intents, and what the oldest snapshot any reader
// still holds is, so vacuum and synopsis maintenance know which dead
// versions are truly dead).
//
// The concurrency model is single-writer MVCC: the engine serializes the
// apply and commit phases of write transactions under its write lock, so
// the manager itself only needs to be safe for the lock-free parts —
// snapshot handout to readers and horizon queries.
//
// Timestamps are a single int64 space shared with internal/storage's
// begin/end stamps: Snapshot() returns the current clock value, a commit
// takes clock+1, and the clock publishes only after the commit is durable
// and its versions are stamped, so no snapshot handed out can ever include
// a half-visible transaction.
package txn

import (
	"sync"
	"sync/atomic"
)

// Txn is one open transaction.
type Txn struct {
	// ID is the transaction's unique positive identifier; storage encodes
	// write intents as -ID stamps.
	ID int64
	// Snap is the snapshot timestamp every read in the transaction uses:
	// the transaction sees versions committed at or before Snap, plus its
	// own writes.
	Snap int64
}

// Manager hands out transaction IDs, snapshots, and commit timestamps.
type Manager struct {
	clock  atomic.Int64 // last published commit timestamp
	lastID atomic.Int64 // last transaction ID handed out

	mu     sync.Mutex
	writes map[int64]int64 // open write transactions: ID -> snapshot
	pins   map[int64]int   // pinned snapshots: timestamp -> refcount
}

// NewManager returns a manager whose clock starts at storage.CommittedMin:
// rows installed by the legacy non-transactional path carry that stamp, so
// the very first snapshot already sees them.
func NewManager() *Manager {
	m := &Manager{writes: map[int64]int64{}, pins: map[int64]int{}}
	m.clock.Store(1)
	return m
}

// Snapshot returns a snapshot of the current committed state. Lock-free.
func (m *Manager) Snapshot() int64 { return m.clock.Load() }

// SeedIDs advances the transaction-ID allocator past id. Recovery calls it
// with the highest transaction ID seen in the WAL so a fresh transaction
// can never share an ID with an unterminated group orphaned in the log.
func (m *Manager) SeedIDs(id int64) {
	for {
		cur := m.lastID.Load()
		if cur >= id || m.lastID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Begin opens a transaction at the current committed state.
func (m *Manager) Begin() *Txn {
	t := &Txn{ID: m.lastID.Add(1)}
	m.mu.Lock()
	// Snapshot under the lock so Horizon can never miss a transaction
	// whose snapshot predates its registration.
	t.Snap = m.clock.Load()
	m.writes[t.ID] = t.Snap
	m.pins[t.Snap]++
	m.mu.Unlock()
	return t
}

// PrepareCommit reserves the next commit timestamp without publishing it:
// versions stamped with it stay invisible to every snapshot handed out
// until Publish. The engine calls this with writers serialized, so two
// in-flight commits never share a timestamp.
func (m *Manager) PrepareCommit() int64 { return m.clock.Load() + 1 }

// Publish advances the clock to ts, making every version stamped with ts
// visible to subsequent snapshots. Must be called with writers serialized
// and ts == PrepareCommit's return.
func (m *Manager) Publish(ts int64) { m.clock.Store(ts) }

// Finish closes a transaction opened with Begin (after commit or
// rollback), releasing its snapshot pin.
func (m *Manager) Finish(t *Txn) {
	if t == nil {
		return
	}
	m.mu.Lock()
	delete(m.writes, t.ID)
	m.unpinLocked(t.Snap)
	m.mu.Unlock()
}

// Pin records that a reader holds snap until Unpin — scans running outside
// the engine locks pin their snapshot so Horizon accounts for them.
func (m *Manager) Pin(snap int64) {
	m.mu.Lock()
	m.pins[snap]++
	m.mu.Unlock()
}

// Unpin releases one Pin of snap.
func (m *Manager) Unpin(snap int64) {
	m.mu.Lock()
	m.unpinLocked(snap)
	m.mu.Unlock()
}

func (m *Manager) unpinLocked(snap int64) {
	if n := m.pins[snap]; n <= 1 {
		delete(m.pins, snap)
	} else {
		m.pins[snap] = n - 1
	}
}

// ActiveWrites reports how many write transactions are open. Checkpoints
// require zero — a snapshot must not capture uncommitted versions.
func (m *Manager) ActiveWrites() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.writes)
}

// Horizon returns the oldest snapshot any reader or open transaction still
// holds (the current clock when none do): versions ended at or before the
// horizon are invisible to every present and future snapshot and may be
// vacuumed.
func (m *Manager) Horizon() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.clock.Load()
	for snap := range m.pins {
		if snap < h {
			h = snap
		}
	}
	return h
}
