package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/server"
	"softdb/internal/types"
	"softdb/internal/wire"
)

// slowDB builds a table wide enough that the injected per-page stall
// keeps a full scan running for hundreds of milliseconds.
func slowDB(t *testing.T) *engine.Database {
	t.Helper()
	db := engine.Open()
	db.NoIndexes = true
	db.MustExec("CREATE TABLE x (a INT NOT NULL)")
	te, err := db.Catalog().Table("x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if err := db.InsertRow(te, types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: 5 * time.Millisecond})
	return db
}

func startServer(t *testing.T, db *engine.Database) string {
	t.Helper()
	s := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return addr.String()
}

// TestClientDeadlineKeepsConn: a context deadline travels to the server,
// comes back as a typed timeout, and the connection stays usable.
func TestClientDeadlineKeepsConn(t *testing.T) {
	db := slowDB(t)
	addr := startServer(t, db)
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = c.Query(ctx, "SELECT COUNT(*) AS n FROM x WHERE a >= 0")
	if client.Kind(err) != exec.KindTimeout {
		t.Fatalf("deadline should come back as a typed timeout, got %v", err)
	}
	db.Fault = nil
	if _, err := c.Query(context.Background(), "SELECT COUNT(*) AS n FROM x WHERE a >= 0"); err != nil {
		t.Fatalf("connection should survive a server-side timeout: %v", err)
	}
}

// TestClientCancelBreaksConn: plain cancellation (no deadline) trips the
// watchdog; the connection is reported broken and later calls fail fast.
func TestClientCancelBreaksConn(t *testing.T) {
	db := slowDB(t)
	addr := startServer(t, db)
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = c.Query(ctx, "SELECT COUNT(*) AS n FROM x WHERE a >= 0")
	if !errors.Is(err, context.Canceled) || !errors.Is(err, client.ErrConnBroken) {
		t.Fatalf("canceled query should report the broken conn: %v", err)
	}
	if _, err := c.Query(context.Background(), "SELECT 1 AS one FROM x WHERE a >= 0"); !errors.Is(err, client.ErrConnBroken) {
		t.Fatalf("later calls must fail fast on a broken conn: %v", err)
	}
}

// TestClientKind covers the error classifier over local and remote error
// shapes.
func TestClientKind(t *testing.T) {
	if client.Kind(errors.New("plain")) != exec.KindError {
		t.Fatal("plain errors classify as error")
	}
	qe := &exec.QueryError{Op: "scan", Kind: exec.KindMemBudget, Err: errors.New("over budget")}
	if client.Kind(qe) != exec.KindMemBudget {
		t.Fatal("local QueryError kinds pass through")
	}
}

// TestClientKindShardErrors: the three router-originated kinds classify
// identically whether they arrive as local QueryErrors (embedded router)
// or as wire errors (router behind the TCP front end).
func TestClientKindShardErrors(t *testing.T) {
	kinds := []exec.ErrKind{exec.KindWrongShard, exec.KindMultiShardTxn, exec.KindShardUnreachable}
	for _, k := range kinds {
		local := &exec.QueryError{Op: "router", Kind: k, Err: errors.New("boom")}
		if got := client.Kind(local); got != k {
			t.Errorf("QueryError %s classified as %s", k, got)
		}
		remote := wire.ErrorFrom(local)
		if got := client.Kind(remote); got != k {
			t.Errorf("wire.Error %s classified as %s", k, got)
		}
		// Wrapped once more (fmt.Errorf with %w), still classifies.
		if got := client.Kind(fmt.Errorf("fan-out: %w", remote)); got != k {
			t.Errorf("wrapped wire.Error %s classified as %s", k, got)
		}
	}
}

// TestDialerRetriesUntilServerUp: a Dialer pointed at a listener that
// starts accepting after the first attempt eventually connects.
func TestDialerRetriesUntilServerUp(t *testing.T) {
	// Reserve a port, then close the listener so the first dial fails.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	db := engine.Open()
	started := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		s := server.New(db, server.Config{Addr: addr})
		if _, err := s.Listen(); err != nil {
			close(started)
			return
		}
		go s.Serve()
		close(started)
	}()
	d := client.Dialer{Addr: addr, BaseBackoff: 30 * time.Millisecond, MaxAttempts: 10}
	c, err := d.Dial(context.Background())
	if err != nil {
		t.Fatalf("dial with retries: %v", err)
	}
	defer c.Close()
	<-started
	if _, err := c.Query(context.Background(), "CREATE TABLE dial_t (a INT)"); err != nil {
		t.Fatalf("query over retried conn: %v", err)
	}
}

// TestDialerAttemptsExhausted: a dead address fails after MaxAttempts
// with the last dial error wrapped.
func TestDialerAttemptsExhausted(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	d := client.Dialer{Addr: addr, MaxAttempts: 2, BaseBackoff: time.Millisecond}
	start := time.Now()
	if _, err := d.Dial(context.Background()); err == nil {
		t.Fatal("dial of a dead address should fail")
	} else if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("exhausting 2 attempts should be quick")
	}
}

// TestDialerContextCancel: cancellation interrupts the backoff sleep.
func TestDialerContextCancel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	d := client.Dialer{Addr: addr, MaxAttempts: 100, BaseBackoff: 50 * time.Millisecond}
	_, err = d.Dial(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled dial should surface context.Canceled: %v", err)
	}
}
