package client

import (
	"context"
	"fmt"
	"time"
)

// Dialer connects to one softdb server with retry and exponential
// backoff. The shard router keeps one Dialer per shard: a shard that is
// restarting gets a few quick retries before the router declares it
// unreachable, and the same helper serves any client that wants
// reconnect-on-broken-conn semantics without hand-rolling the loop.
//
// The zero value is not useful; set Addr. All other fields have working
// defaults.
type Dialer struct {
	// Addr is the server address to dial.
	Addr string
	// ConnectTimeout bounds each individual dial-and-handshake attempt.
	// Default 5s.
	ConnectTimeout time.Duration
	// MaxAttempts is how many dials to try before giving up. Default 3.
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed attempt; it doubles
	// each retry. Default 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Default 1s.
	MaxBackoff time.Duration
}

func (d Dialer) connectTimeout() time.Duration {
	if d.ConnectTimeout > 0 {
		return d.ConnectTimeout
	}
	return 5 * time.Second
}

func (d Dialer) maxAttempts() int {
	if d.MaxAttempts > 0 {
		return d.MaxAttempts
	}
	return 3
}

func (d Dialer) baseBackoff() time.Duration {
	if d.BaseBackoff > 0 {
		return d.BaseBackoff
	}
	return 25 * time.Millisecond
}

func (d Dialer) maxBackoff() time.Duration {
	if d.MaxBackoff > 0 {
		return d.MaxBackoff
	}
	return time.Second
}

// Dial attempts to connect until an attempt succeeds, MaxAttempts fail,
// or ctx fires. The returned error wraps the last attempt's failure.
func (d Dialer) Dial(ctx context.Context) (*Conn, error) {
	var lastErr error
	backoff := d.baseBackoff()
	for attempt := 0; attempt < d.maxAttempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("client: dial %s: %w (last error: %w)", d.Addr, ctx.Err(), lastErr)
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > d.maxBackoff() {
				backoff = d.maxBackoff()
			}
		}
		c, err := ConnectTimeout(d.Addr, d.connectTimeout())
		if err == nil {
			return c, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("client: dial %s: attempts exhausted: %w", d.Addr, lastErr)
}
