// Package client is the Go client for softdb's wire protocol. It powers
// the softdb shell's -connect mode and the internal/workload concurrent
// driver.
//
// A Conn runs one request at a time (concurrent callers serialize on an
// internal lock — open more connections for parallelism, like the server
// itself expects). Errors the server classified keep their classification:
// Query returns a *wire.Error whose Kind is the same exec.ErrKind a local
// engine caller would see on *exec.QueryError, so remote and in-process
// callers share one error-handling idiom (see Kind).
//
// Cancellation: when the Query context carries a deadline, the remaining
// time is shipped in the request so the server aborts the statement and
// the connection stays usable — the client then receives a typed timeout
// frame. Context cancellation without a deadline (or a server that stops
// responding) trips a watchdog that unblocks the read and breaks the
// connection, since the stream position is no longer trustworthy.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"softdb/internal/exec"
	"softdb/internal/types"
	"softdb/internal/wire"
)

// ErrConnBroken reports a connection abandoned mid-stream (watchdog fired
// or a framing error); the caller must reconnect.
var ErrConnBroken = errors.New("client: connection broken")

// Result is one statement's response.
type Result struct {
	Columns      []string
	Rows         []types.Row
	Notices      []string
	RowsAffected int64
}

// Conn is one wire-protocol connection. Safe for concurrent use; requests
// serialize.
type Conn struct {
	mu      sync.Mutex
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	session string
	broken  bool
}

// Connect dials addr and performs the welcome handshake.
func Connect(addr string) (*Conn, error) {
	return ConnectTimeout(addr, 10*time.Second)
}

// ConnectTimeout dials addr with a dial-and-handshake timeout.
func ConnectTimeout(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		_ = nc.SetReadDeadline(time.Now().Add(timeout))
	}
	c := &Conn{c: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	t, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if t != wire.FrameWelcome {
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame 0x%02x", byte(t))
	}
	w, err := wire.ParseWelcome(payload)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	if w.Proto != wire.ProtoVersion {
		_ = nc.Close()
		return nil, fmt.Errorf("client: protocol version mismatch: server %d, client %d", w.Proto, wire.ProtoVersion)
	}
	if w.Session == "" {
		// The server welcomes then rejects connections beyond its cap; the
		// empty session label marks the rejection, the error frame explains.
		defer nc.Close()
		if t, payload, err = wire.ReadFrame(c.br); err == nil && t == wire.FrameError {
			if e, perr := wire.ParseError(payload); perr == nil {
				return nil, e
			}
		}
		return nil, errors.New("client: server rejected connection")
	}
	_ = nc.SetReadDeadline(time.Time{})
	c.session = w.Session
	return c, nil
}

// Session returns the server-assigned session label (e.g. "conn-3").
func (c *Conn) Session() string { return c.session }

// Close closes the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.c.Close()
}

// Query executes one statement and collects the full response. A context
// deadline travels to the server as the statement timeout; see the
// package comment for cancellation semantics.
func (c *Conn) Query(ctx context.Context, sql string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, ErrConnBroken
	}
	q := wire.Query{SQL: sql}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		q.TimeoutMillis = uint64(ms)
	}
	// The watchdog unblocks a read stuck past cancellation (or past a
	// server that missed the deadline) by stamping an immediate deadline.
	// Grace beyond the context deadline lets the server's own typed
	// timeout frame arrive first, keeping the connection usable.
	watchdog := context.AfterFunc(ctx, func() {
		grace := time.Duration(0)
		if _, ok := ctx.Deadline(); ok {
			grace = 2 * time.Second
		}
		_ = c.c.SetReadDeadline(time.Now().Add(grace))
	})
	defer func() {
		if watchdog() { // not fired: clear any deadline for the next call
			_ = c.c.SetReadDeadline(time.Time{})
		}
	}()
	if err := wire.WriteFrame(c.bw, wire.FrameQuery, wire.AppendQuery(nil, q)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(err)
	}
	res, err := c.readResult()
	if err != nil {
		var we *wire.Error
		if errors.As(err, &we) {
			return nil, err // server-reported; stream is still in sync
		}
		if ctx.Err() != nil {
			err = fmt.Errorf("%w: %w", ctx.Err(), ErrConnBroken)
		}
		return nil, c.fail(err)
	}
	return res, nil
}

// Begin opens an explicit transaction on the connection's server session.
// Until Commit or Rollback, statements on this connection read from the
// transaction's snapshot and stage its writes; a connection drop rolls the
// transaction back server-side.
func (c *Conn) Begin(ctx context.Context) error {
	_, err := c.Query(ctx, "BEGIN")
	return err
}

// Commit commits the open transaction. A first-updater-wins conflict
// surfaces here (or on the conflicting statement) as a *wire.Error with
// Kind "conflict"; the transaction is already rolled back in that case.
func (c *Conn) Commit(ctx context.Context) error {
	_, err := c.Query(ctx, "COMMIT")
	return err
}

// Rollback abandons the open transaction.
func (c *Conn) Rollback(ctx context.Context) error {
	_, err := c.Query(ctx, "ROLLBACK")
	return err
}

// Set assigns one session setting on the server (see engine.Session.Set
// for names and values).
func (c *Conn) Set(name, value string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return ErrConnBroken
	}
	if err := wire.WriteFrame(c.bw, wire.FrameSet, wire.AppendSet(nil, wire.Set{Name: name, Value: value})); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	t, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return c.fail(err)
	}
	switch t {
	case wire.FrameOK:
		return nil
	case wire.FrameError:
		e, perr := wire.ParseError(payload)
		if perr != nil {
			return c.fail(perr)
		}
		return e
	}
	return c.fail(fmt.Errorf("client: unexpected frame 0x%02x to SET", byte(t)))
}

// fail marks the connection unusable and closes it.
func (c *Conn) fail(err error) error {
	c.broken = true
	_ = c.c.Close()
	return err
}

// readResult consumes one response sequence:
// FrameRowDesc? FrameRowBatch* FrameNotice* (FrameDone | FrameError).
func (c *Conn) readResult() (*Result, error) {
	res := &Result{}
	for {
		t, payload, err := wire.ReadFrame(c.br)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.FrameRowDesc:
			if res.Columns, err = wire.ParseColumns(payload); err != nil {
				return nil, err
			}
		case wire.FrameRowBatch:
			if res.Rows, err = wire.ParseRows(res.Rows, payload); err != nil {
				return nil, err
			}
		case wire.FrameNotice:
			res.Notices = append(res.Notices, string(payload))
		case wire.FrameDone:
			d, err := wire.ParseDone(payload)
			if err != nil {
				return nil, err
			}
			res.RowsAffected = d.RowsAffected
			return res, nil
		case wire.FrameError:
			e, perr := wire.ParseError(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, e
		default:
			return nil, fmt.Errorf("client: unexpected frame 0x%02x in response", byte(t))
		}
	}
}

// Kind classifies an error from Query/Set — or from a local engine call —
// into the shared exec.ErrKind space. Non-query errors (parse failures,
// broken connections, ...) report exec.KindError.
func Kind(err error) exec.ErrKind {
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Kind
	}
	if qe, ok := exec.AsQueryError(err); ok {
		return qe.Kind
	}
	return exec.KindError
}
