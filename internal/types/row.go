package types

import "strings"

// Row is an ordered tuple of datums. Rows are positional; column names live
// in the schema layer.
type Row []Datum

// Clone returns a deep copy of the row (datums are immutable, so a shallow
// slice copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows have the same length and pairwise-equal
// datums under Datum.Equal.
func (r Row) Equal(other Row) bool {
	if len(r) != len(other) {
		return false
	}
	for i := range r {
		if !r[i].Equal(other[i]) {
			return false
		}
	}
	return true
}

// Compare orders rows lexicographically by position.
func (r Row) Compare(other Row) int {
	n := len(r)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(other[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(r) < len(other):
		return -1
	case len(r) > len(other):
		return 1
	default:
		return 0
	}
}

// Hash combines the hashes of the row's datums.
func (r Row) Hash() uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, d := range r {
		h ^= d.Hash()
		h *= 1099511628211 // FNV prime
	}
	return h
}

// MemSize estimates the bytes a materialized copy of the row retains: the
// slice header plus each datum's inline struct and string payload. It is
// the unit the executor's per-query memory budget accounts in.
func (r Row) MemSize() int64 {
	// 24 = slice header; 40 ≈ unsafe.Sizeof(Datum{}) (kind + pad + i + f +
	// string header), kept as a constant so types stays unsafe-free.
	size := int64(24) + int64(len(r))*40
	for _, d := range r {
		if d.kind == KindString {
			size += int64(len(d.s))
		}
	}
	return size
}

// Project returns the sub-row at the given positions.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// Concat returns a new row holding r followed by other.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	out = append(out, other...)
	return out
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key renders the row as a map key. Numeric values are normalized so that
// equal values produce equal keys.
func (r Row) Key() string {
	var b strings.Builder
	for i, d := range r {
		if i > 0 {
			b.WriteByte('\x00')
		}
		if d.IsNumeric() {
			// Normalize 1 and 1.0 to the same key image.
			b.WriteString(NewFloat(d.Float()).String())
		} else {
			b.WriteString(d.String())
		}
	}
	return b.String()
}
