package types

import (
	"math/rand"
	"testing"
)

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("clone should not alias")
	}
}

func TestRowEqualAndCompare(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewInt(1), NewString("x")}
	if !a.Equal(b) || a.Compare(b) != 0 {
		t.Error("equal rows")
	}
	c := Row{NewInt(1), NewString("y")}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lexicographic order")
	}
	short := Row{NewInt(1)}
	if short.Compare(a) != -1 {
		t.Error("prefix sorts first")
	}
	if a.Equal(short) {
		t.Error("different lengths are unequal")
	}
}

func TestRowProjectConcat(t *testing.T) {
	r := Row{NewInt(0), NewInt(1), NewInt(2)}
	p := r.Project([]int{2, 0})
	if p[0].Int() != 2 || p[1].Int() != 0 {
		t.Errorf("project: %v", p)
	}
	cat := p.Concat(Row{NewInt(9)})
	if len(cat) != 3 || cat[2].Int() != 9 {
		t.Errorf("concat: %v", cat)
	}
}

func TestRowHashAndKeyNormalization(t *testing.T) {
	a := Row{NewInt(5), NewString("q")}
	b := Row{NewFloat(5), NewString("q")}
	if a.Hash() != b.Hash() {
		t.Error("numerically equal rows must hash equal")
	}
	if a.Key() != b.Key() {
		t.Errorf("numerically equal rows must key equal: %q vs %q", a.Key(), b.Key())
	}
}

func TestRowKeyDistinguishes(t *testing.T) {
	a := Row{NewString("a"), NewString("b")}
	b := Row{NewString("ab"), NewString("")}
	if a.Key() == b.Key() {
		t.Error("keys must not collide across column boundaries")
	}
}

// Property: row compare consistent with element-wise compare.
func TestRowCompareConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := Row{NewInt(int64(r.Intn(3))), NewInt(int64(r.Intn(3)))}
		b := Row{NewInt(int64(r.Intn(3))), NewInt(int64(r.Intn(3)))}
		want := 0
		if c := a[0].Compare(b[0]); c != 0 {
			want = c
		} else {
			want = a[1].Compare(b[1])
		}
		if got := a.Compare(b); got != want {
			t.Fatalf("compare(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
}
