package types

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDatumKinds(t *testing.T) {
	cases := []struct {
		d    Datum
		kind Kind
	}{
		{Null, KindNull},
		{NewInt(42), KindInt},
		{NewFloat(3.5), KindFloat},
		{NewString("hi"), KindString},
		{NewBool(true), KindBool},
		{DateFromYMD(1999, time.December, 15), KindDate},
	}
	for _, c := range cases {
		if c.d.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.d, c.d.Kind(), c.kind)
		}
	}
}

func TestDatumAccessors(t *testing.T) {
	if NewInt(7).Int() != 7 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Int widens to Float")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if NewInt(2).Compare(NewFloat(2.0)) != 0 {
		t.Error("INT 2 should equal FLOAT 2.0")
	}
	if NewInt(2).Compare(NewFloat(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if NewFloat(3.1).Compare(NewInt(3)) != 1 {
		t.Error("3.1 > 3")
	}
	d := DateFromYMD(2000, time.January, 2)
	if d.Compare(NewInt(d.Date())) != 0 {
		t.Error("date equals its day number")
	}
}

func TestCompareNullsFirst(t *testing.T) {
	if Null.Compare(NewInt(-1<<62)) != -1 {
		t.Error("NULL sorts before everything")
	}
	if NewString("").Compare(Null) != 1 {
		t.Error("non-null sorts after NULL")
	}
	if Null.Compare(Null) != 0 {
		t.Error("NULL == NULL under total order")
	}
}

func TestCompareStrings(t *testing.T) {
	if NewString("abc").Compare(NewString("abd")) != -1 {
		t.Error("string order")
	}
	if NewString("b").Compare(NewString("b")) != 0 {
		t.Error("string equality")
	}
}

func TestHashEqualValuesCollide(t *testing.T) {
	if NewInt(5).Hash() != NewFloat(5).Hash() {
		t.Error("INT 5 and FLOAT 5.0 must hash equal")
	}
	if NewString("a").Hash() == NewString("b").Hash() {
		t.Error("different strings should (almost surely) hash differently")
	}
}

func TestArithmetic(t *testing.T) {
	got, err := NewInt(4).Add(NewInt(5))
	if err != nil || got.Int() != 9 {
		t.Errorf("4+5 = %v, %v", got, err)
	}
	got, err = NewInt(4).Mul(NewFloat(2.5))
	if err != nil || got.Float() != 10 {
		t.Errorf("4*2.5 = %v, %v", got, err)
	}
	if _, err = NewInt(1).Div(NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err = NewFloat(1).Div(NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
	got, err = NewInt(7).Div(NewInt(2))
	if err != nil || got.Int() != 3 {
		t.Errorf("7/2 = %v, want 3", got)
	}
}

func TestDateArithmetic(t *testing.T) {
	d := DateFromYMD(1999, time.December, 15)
	later, err := d.Add(NewInt(21))
	if err != nil {
		t.Fatal(err)
	}
	if later.String() != "2000-01-05" {
		t.Errorf("date+21 = %s, want 2000-01-05", later)
	}
	diff, err := later.Sub(d)
	if err != nil || diff.Kind() != KindInt || diff.Int() != 21 {
		t.Errorf("date-date = %v, want INT 21", diff)
	}
	if _, err := d.Add(d); err == nil {
		t.Error("date+date should error")
	}
	if _, err := d.Mul(NewInt(2)); err == nil {
		t.Error("date*int should error")
	}
}

func TestNullPropagation(t *testing.T) {
	got, err := Null.Add(NewInt(1))
	if err != nil || !got.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	got, err = NewInt(1).Div(Null)
	if err != nil || !got.IsNull() {
		t.Error("1 / NULL should be NULL")
	}
}

func TestParseDate(t *testing.T) {
	d, err := ParseDate("1999-12-15")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "1999-12-15" {
		t.Errorf("round trip: %s", d)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("bad date should error")
	}
}

func TestCoerce(t *testing.T) {
	d, err := Coerce(NewString("1999-12-15"), KindDate)
	if err != nil || d.Kind() != KindDate {
		t.Errorf("string→date: %v %v", d, err)
	}
	d, err = Coerce(NewInt(3), KindFloat)
	if err != nil || d.Float() != 3 {
		t.Errorf("int→float: %v %v", d, err)
	}
	d, err = Coerce(NewFloat(3.9), KindInt)
	if err != nil || d.Int() != 3 {
		t.Errorf("float→int truncates: %v %v", d, err)
	}
	if _, err := Coerce(NewString("abc"), KindInt); err == nil {
		t.Error("bad int coercion should error")
	}
	d, err = Coerce(Null, KindInt)
	if err != nil || !d.IsNull() {
		t.Error("NULL coerces to NULL")
	}
}

func TestStringRendering(t *testing.T) {
	if NewString("it's").String() != "'it''s'" {
		t.Errorf("quote escaping: %s", NewString("it's"))
	}
	if NewBool(true).String() != "TRUE" || NewBool(false).String() != "FALSE" {
		t.Error("bool rendering")
	}
}

func TestMinMaxDatum(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	if MinDatum(a, b) != a || MaxDatum(a, b) != b {
		t.Error("min/max")
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareAntisymmetric(t *testing.T) {
	gen := func(r *rand.Rand) Datum {
		switch r.Intn(5) {
		case 0:
			return Null
		case 1:
			return NewInt(int64(r.Intn(20) - 10))
		case 2:
			return NewFloat(float64(r.Intn(20)-10) / 2)
		case 3:
			return NewString(string(rune('a' + r.Intn(4))))
		default:
			return NewDate(int64(r.Intn(10)))
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := gen(r), gen(r)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if (a.Compare(b) == 0) != a.Equal(b) {
			t.Fatalf("Equal inconsistent with Compare: %v vs %v", a, b)
		}
	}
}

// Property: Compare is transitive over random triples.
func TestCompareTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	gen := func() Datum {
		switch r.Intn(4) {
		case 0:
			return Null
		case 1:
			return NewInt(int64(r.Intn(10)))
		case 2:
			return NewFloat(float64(r.Intn(10)))
		default:
			return NewString(string(rune('a' + r.Intn(3))))
		}
	}
	for i := 0; i < 3000; i++ {
		a, b, c := gen(), gen(), gen()
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

// Property (testing/quick): int arithmetic matches Go semantics.
func TestQuickIntAdd(t *testing.T) {
	f := func(a, b int32) bool {
		got, err := NewInt(int64(a)).Add(NewInt(int64(b)))
		return err == nil && got.Int() == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareIntsMatchesGo(t *testing.T) {
	f := func(a, b int64) bool {
		c := NewInt(a).Compare(NewInt(b))
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
