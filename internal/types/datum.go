// Package types defines the scalar value system used throughout softdb:
// the Datum type, its kinds, ordering, hashing, arithmetic, and parsing.
//
// A Datum is a small immutable value. NULL is represented by KindNull and
// compares per SQL three-valued logic in expression evaluation; for index
// and sort purposes Compare places NULL before all non-NULL values so that
// total ordering is available where the engine needs one.
package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime types a Datum may hold.
type Kind uint8

const (
	// KindNull is the SQL NULL marker.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Datum is a single scalar value. The zero value is NULL.
type Datum struct {
	kind Kind
	i    int64 // int, bool (0/1), date (days since epoch)
	f    float64
	s    string
}

// Null is the NULL datum.
var Null = Datum{}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	if v {
		return Datum{kind: KindBool, i: 1}
	}
	return Datum{kind: KindBool}
}

// NewDate returns a date datum from days since the Unix epoch.
func NewDate(daysSinceEpoch int64) Datum { return Datum{kind: KindDate, i: daysSinceEpoch} }

// DateFromYMD returns a date datum for the given calendar day.
func DateFromYMD(year int, month time.Month, day int) Datum {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return NewDate(t.Unix() / 86400)
}

// Kind reports the datum's kind.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Int returns the integer value. It panics on a non-integer datum.
func (d Datum) Int() int64 {
	if d.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s datum", d.kind))
	}
	return d.i
}

// Float returns the float value. Integer and date datums are widened.
func (d Datum) Float() float64 {
	switch d.kind {
	case KindFloat:
		return d.f
	case KindInt, KindDate:
		return float64(d.i)
	case KindBool:
		return float64(d.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s datum", d.kind))
	}
}

// IntImage returns the raw int64 payload shared by integer, date, and
// boolean datums — the image vectorized kernels compare and hash on. It
// panics on kinds that do not carry an integer image.
func (d Datum) IntImage() int64 {
	switch d.kind {
	case KindInt, KindDate, KindBool:
		return d.i
	default:
		panic(fmt.Sprintf("types: IntImage() on %s datum", d.kind))
	}
}

// Str returns the string value. It panics on a non-string datum.
func (d Datum) Str() string {
	if d.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s datum", d.kind))
	}
	return d.s
}

// Bool returns the boolean value. It panics on a non-boolean datum.
func (d Datum) Bool() bool {
	if d.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s datum", d.kind))
	}
	return d.i != 0
}

// Date returns the date as days since the Unix epoch.
func (d Datum) Date() int64 {
	if d.kind != KindDate {
		panic(fmt.Sprintf("types: Date() on %s datum", d.kind))
	}
	return d.i
}

// IsNumeric reports whether the datum participates in arithmetic
// (ints, floats, and dates, which are day counts).
func (d Datum) IsNumeric() bool {
	return d.kind == KindInt || d.kind == KindFloat || d.kind == KindDate
}

// String renders the datum in SQL-literal-like form.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(d.s, "'", "''") + "'"
	case KindBool:
		if d.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		t := time.Unix(d.i*86400, 0).UTC()
		return t.Format("2006-01-02")
	default:
		return fmt.Sprintf("Datum(kind=%d)", d.kind)
	}
}

// comparable kinds: numeric kinds compare with each other; otherwise kinds
// must match. mismatched non-numeric kinds order by kind to keep Compare
// total.

// Compare returns -1, 0, or +1 ordering d against other. NULL sorts first.
// Numeric kinds (INT, FLOAT, DATE) compare by numeric value; other kinds
// must match, and mismatches order by kind so the relation stays total.
func (d Datum) Compare(other Datum) int {
	if d.kind == KindNull || other.kind == KindNull {
		switch {
		case d.kind == other.kind:
			return 0
		case d.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if d.IsNumeric() && other.IsNumeric() {
		if d.kind == KindFloat || other.kind == KindFloat {
			a, b := d.Float(), other.Float()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
		switch {
		case d.i < other.i:
			return -1
		case d.i > other.i:
			return 1
		default:
			return 0
		}
	}
	if d.kind != other.kind {
		if d.kind < other.kind {
			return -1
		}
		return 1
	}
	switch d.kind {
	case KindString:
		return strings.Compare(d.s, other.s)
	case KindBool:
		switch {
		case d.i < other.i:
			return -1
		case d.i > other.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics (NULL equals NULL
// here; expression evaluation layers SQL three-valued logic on top).
func (d Datum) Equal(other Datum) bool { return d.Compare(other) == 0 }

var hashSeed = maphash.MakeSeed()

// Hash returns a stable-in-process hash of the datum, suitable for hash
// joins and hash aggregation. Numerically equal INT/FLOAT/DATE values hash
// identically.
func (d Datum) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch d.kind {
	case KindNull:
		h.WriteByte(0)
	case KindString:
		h.WriteByte(1)
		h.WriteString(d.s)
	case KindBool:
		h.WriteByte(2)
		h.WriteByte(byte(d.i))
	default:
		// Numeric: hash the float64 image so 1 and 1.0 collide.
		f := d.Float()
		if f == math.Trunc(f) && !math.Signbit(f) || f == math.Trunc(f) {
			// normalize -0 to 0
			if f == 0 {
				f = 0
			}
		}
		h.WriteByte(3)
		bits := math.Float64bits(f)
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Add returns d + other for numeric datums. DATE + INT yields DATE
// (day arithmetic). NULL propagates.
func (d Datum) Add(other Datum) (Datum, error) { return arith(d, other, '+') }

// Sub returns d - other. DATE - DATE yields INT days; DATE - INT yields DATE.
func (d Datum) Sub(other Datum) (Datum, error) { return arith(d, other, '-') }

// Mul returns d * other for numeric datums.
func (d Datum) Mul(other Datum) (Datum, error) { return arith(d, other, '*') }

// Div returns d / other for numeric datums. Integer division truncates.
func (d Datum) Div(other Datum) (Datum, error) { return arith(d, other, '/') }

func arith(a, b Datum, op byte) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("types: cannot apply %c to %s and %s", op, a.kind, b.kind)
	}
	// Date arithmetic stays in the integer domain.
	if a.kind == KindDate || b.kind == KindDate {
		if a.kind == KindFloat || b.kind == KindFloat {
			return Null, fmt.Errorf("types: cannot apply %c to %s and %s", op, a.kind, b.kind)
		}
		switch op {
		case '+':
			if a.kind == KindDate && b.kind == KindDate {
				return Null, fmt.Errorf("types: cannot add two dates")
			}
			return NewDate(a.i + b.i), nil
		case '-':
			if a.kind == KindDate && b.kind == KindDate {
				return NewInt(a.i - b.i), nil
			}
			if a.kind == KindDate {
				return NewDate(a.i - b.i), nil
			}
			return Null, fmt.Errorf("types: cannot subtract a date from an integer")
		default:
			return Null, fmt.Errorf("types: cannot apply %c to dates", op)
		}
	}
	if a.kind == KindFloat || b.kind == KindFloat {
		x, y := a.Float(), b.Float()
		switch op {
		case '+':
			return NewFloat(x + y), nil
		case '-':
			return NewFloat(x - y), nil
		case '*':
			return NewFloat(x * y), nil
		case '/':
			if y == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewFloat(x / y), nil
		}
	}
	x, y := a.i, b.i
	switch op {
	case '+':
		return NewInt(x + y), nil
	case '-':
		return NewInt(x - y), nil
	case '*':
		return NewInt(x * y), nil
	case '/':
		if y == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewInt(x / y), nil
	}
	return Null, fmt.Errorf("types: unknown operator %c", op)
}

// ParseDate parses a YYYY-MM-DD literal into a date datum.
func ParseDate(s string) (Datum, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("types: bad date literal %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// Coerce converts d to the requested kind where a lossless or conventional
// conversion exists (int↔float, string date literals to DATE, etc.).
func Coerce(d Datum, to Kind) (Datum, error) {
	if d.IsNull() || d.kind == to {
		return d, nil
	}
	switch to {
	case KindInt:
		switch d.kind {
		case KindFloat:
			return NewInt(int64(d.f)), nil
		case KindDate:
			return NewInt(d.i), nil
		case KindString:
			v, err := strconv.ParseInt(strings.TrimSpace(d.s), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("types: cannot coerce %s to INT", d)
			}
			return NewInt(v), nil
		}
	case KindFloat:
		if d.IsNumeric() {
			return NewFloat(d.Float()), nil
		}
		if d.kind == KindString {
			v, err := strconv.ParseFloat(strings.TrimSpace(d.s), 64)
			if err != nil {
				return Null, fmt.Errorf("types: cannot coerce %s to FLOAT", d)
			}
			return NewFloat(v), nil
		}
	case KindDate:
		switch d.kind {
		case KindInt:
			return NewDate(d.i), nil
		case KindString:
			return ParseDate(d.s)
		}
	case KindString:
		return NewString(d.String()), nil
	case KindBool:
		if d.kind == KindInt {
			return NewBool(d.i != 0), nil
		}
	}
	return Null, fmt.Errorf("types: cannot coerce %s datum to %s", d.kind, to)
}

// MinDatum returns the smaller of a and b under Compare.
func MinDatum(a, b Datum) Datum {
	if a.Compare(b) <= 0 {
		return a
	}
	return b
}

// MaxDatum returns the larger of a and b under Compare.
func MaxDatum(a, b Datum) Datum {
	if a.Compare(b) >= 0 {
		return a
	}
	return b
}
