// Package schema defines table and column metadata shared by the storage,
// catalog, planning, and execution layers.
package schema

import (
	"fmt"
	"strings"

	"softdb/internal/types"
)

// Column describes one attribute of a table.
type Column struct {
	Name     string
	Type     types.Kind
	Nullable bool
}

// Table describes a base table: its name and ordered columns.
type Table struct {
	Name    string
	Columns []Column
}

// NewTable builds a table definition, validating that column names are
// unique (case-insensitively).
func NewTable(name string, cols ...Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: table %s has no columns", name)
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if lc == "" {
			return nil, fmt.Errorf("schema: table %s has an unnamed column", name)
		}
		if seen[lc] {
			return nil, fmt.Errorf("schema: table %s: duplicate column %s", name, c.Name)
		}
		seen[lc] = true
	}
	return &Table{Name: name, Columns: cols}, nil
}

// ColumnIndex returns the ordinal of the named column, or -1. Matching is
// case-insensitive, following SQL identifier rules.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the definition of the named column.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// Arity returns the number of columns.
func (t *Table) Arity() int { return len(t.Columns) }

// ValidateRow checks arity, kinds (with numeric coercion), and nullability,
// returning a possibly-coerced copy of the row ready for storage.
func (t *Table) ValidateRow(row types.Row) (types.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("schema: table %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	out := make(types.Row, len(row))
	for i, d := range row {
		col := t.Columns[i]
		if d.IsNull() {
			if !col.Nullable {
				return nil, fmt.Errorf("schema: column %s.%s is NOT NULL", t.Name, col.Name)
			}
			out[i] = d
			continue
		}
		if d.Kind() == col.Type {
			out[i] = d
			continue
		}
		c, err := types.Coerce(d, col.Type)
		if err != nil {
			return nil, fmt.Errorf("schema: column %s.%s: %w", t.Name, col.Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// String renders the table as a CREATE TABLE-like signature.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Name)
	b.WriteByte('(')
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if !c.Nullable {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteByte(')')
	return b.String()
}
