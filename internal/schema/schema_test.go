package schema

import (
	"testing"

	"softdb/internal/types"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("emp",
		Column{Name: "id", Type: types.KindInt},
		Column{Name: "name", Type: types.KindString, Nullable: true},
		Column{Name: "hired", Type: types.KindDate, Nullable: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(""); err == nil {
		t.Error("empty name should error")
	}
	if _, err := NewTable("t"); err == nil {
		t.Error("no columns should error")
	}
	if _, err := NewTable("t",
		Column{Name: "a", Type: types.KindInt},
		Column{Name: "A", Type: types.KindInt},
	); err == nil {
		t.Error("case-insensitive duplicate column should error")
	}
}

func TestColumnLookup(t *testing.T) {
	tab := sampleTable(t)
	if tab.ColumnIndex("NAME") != 1 {
		t.Error("lookup is case-insensitive")
	}
	if tab.ColumnIndex("missing") != -1 {
		t.Error("missing column returns -1")
	}
	c, ok := tab.Column("hired")
	if !ok || c.Type != types.KindDate {
		t.Error("Column accessor")
	}
	names := tab.ColumnNames()
	if len(names) != 3 || names[0] != "id" {
		t.Errorf("ColumnNames: %v", names)
	}
	if tab.Arity() != 3 {
		t.Error("Arity")
	}
}

func TestValidateRowArity(t *testing.T) {
	tab := sampleTable(t)
	if _, err := tab.ValidateRow(types.Row{types.NewInt(1)}); err == nil {
		t.Error("short row should error")
	}
}

func TestValidateRowNullability(t *testing.T) {
	tab := sampleTable(t)
	if _, err := tab.ValidateRow(types.Row{types.Null, types.Null, types.Null}); err == nil {
		t.Error("NULL in NOT NULL column should error")
	}
	row, err := tab.ValidateRow(types.Row{types.NewInt(1), types.Null, types.Null})
	if err != nil {
		t.Fatal(err)
	}
	if !row[1].IsNull() {
		t.Error("nullable columns accept NULL")
	}
}

func TestValidateRowCoercion(t *testing.T) {
	tab := sampleTable(t)
	row, err := tab.ValidateRow(types.Row{
		types.NewFloat(4),
		types.NewString("ann"),
		types.NewString("2001-05-21"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Kind() != types.KindInt || row[0].Int() != 4 {
		t.Errorf("float→int coercion: %v", row[0])
	}
	if row[2].Kind() != types.KindDate {
		t.Errorf("string→date coercion: %v", row[2])
	}
	if _, err := tab.ValidateRow(types.Row{
		types.NewString("oops"), types.Null, types.Null,
	}); err == nil {
		t.Error("uncoercible value should error")
	}
}

func TestTableString(t *testing.T) {
	tab := sampleTable(t)
	s := tab.String()
	if s != "emp(id INT NOT NULL, name STRING, hired DATE)" {
		t.Errorf("String: %s", s)
	}
}
