package opt

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"softdb/internal/btree"
	"softdb/internal/catalog"
	"softdb/internal/exec"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/plan"
	"softdb/internal/sql"
	"softdb/internal/stats"
	"softdb/internal/types"
)

// dpTableLimit is the largest join-group size planned with exhaustive
// dynamic programming; larger groups fall back to greedy ordering.
const dpTableLimit = 7

// defaultParallelMinRows is the estimated-cardinality threshold below
// which parallel operators are not worth their coordination overhead.
const defaultParallelMinRows = 4096

// Optimizer lowers logical plans to physical operator trees.
type Optimizer struct {
	Cat *catalog.Catalog
	// NoIndexes disables index access paths (ablation/baseline).
	NoIndexes bool
	// NoSSCEstimation disables §5.1 twinned-predicate cardinality
	// adjustment (ablation/baseline).
	NoSSCEstimation bool
	// NoASTEstimation disables §4.4 AST-based filter-factor estimation
	// (ablation/baseline).
	NoASTEstimation bool
	// ForceGreedyJoins bypasses DP join ordering (ablation).
	ForceGreedyJoins bool
	// NoPrune disables synopsis-based page pruning: scans get no prune
	// predicates and page estimates ignore synopses (ablation/baseline).
	NoPrune bool
	// NoBatch prices every operator row-at-a-time: the per-row CPU
	// discount batch-capable operators earn from their vectorized kernels
	// is withheld, matching the -no-batch execution path.
	NoBatch bool
	// Parallel is the maximum intra-query degree of parallelism; values
	// <= 1 plan serial operators only.
	Parallel int
	// ParallelMinRows overrides defaultParallelMinRows (tests force
	// parallel plans on small tables by setting it to 1); 0 means default.
	ParallelMinRows float64
	// Masked, when non-empty, names one constraint or AST whose statistics
	// must not inform estimation (shadow costing; pairs with
	// rewrite.Options.Masked so the masked plan is priced as if the
	// characterization had never been discovered).
	Masked string

	// limitFree is set per Optimize call: plans containing LIMIT stay
	// serial, because early termination would make parallel workers scan
	// pages a serial plan never touches, breaking exact cost parity.
	limitFree bool
	// nodeRows and events accumulate per Optimize call: per-operator row
	// estimates keyed by operator identity (EXPLAIN ANALYZE matches them to
	// plan nodes) and soft-constraint consultation events.
	nodeRows map[exec.Operator]float64
	events   []obs.Event
	// nodeInformed records, per operator, the constraints/ASTs whose
	// information sharpened that operator's cardinality estimate — the
	// economy ledger splits q-error into informed vs. blind with it.
	nodeInformed map[exec.Operator][]string
}

// Result is a lowered, costed physical plan.
type Result struct {
	Root    exec.Operator
	EstRows float64
	EstCost float64
	// NodeRows maps each operator in Root (plus discarded candidates, which
	// are harmless) to its estimated output cardinality.
	NodeRows map[exec.Operator]float64
	// Events records every soft-constraint consultation made while costing
	// this plan (SSC twinned-predicate estimation, AST filter factors).
	Events []obs.Event
	// NodeInformed maps operators whose cardinality estimate was sharpened
	// by constraint-derived information to the names of the informing
	// constraints/ASTs.
	NodeInformed map[exec.Operator][]string
}

// Optimize lowers the logical plan.
func (o *Optimizer) Optimize(n plan.Node) (*Result, error) {
	o.limitFree = !containsLimit(n)
	o.nodeRows = map[exec.Operator]float64{}
	o.nodeInformed = map[exec.Operator][]string{}
	o.events = nil
	op, pr, err := o.lower(n)
	if err != nil {
		return nil, err
	}
	return &Result{Root: op, EstRows: pr.rows, EstCost: pr.cost, NodeRows: o.nodeRows, Events: o.events, NodeInformed: o.nodeInformed}, nil
}

// note records an operator's estimated cardinality for EXPLAIN ANALYZE.
func (o *Optimizer) note(op exec.Operator, rows float64) {
	if o.nodeRows != nil && op != nil {
		o.nodeRows[op] = rows
	}
}

// event records a soft-constraint consultation made during planning.
func (o *Optimizer) event(e obs.Event) { o.events = append(o.events, e) }

// lower lowers one node and records its cardinality estimate.
func (o *Optimizer) lower(n plan.Node) (exec.Operator, prop, error) {
	op, pr, err := o.lowerNode(n)
	if err == nil {
		o.note(op, pr.rows)
	}
	return op, pr, err
}

func containsLimit(n plan.Node) bool {
	if _, ok := n.(*plan.Limit); ok {
		return true
	}
	for _, in := range n.Inputs() {
		if containsLimit(in) {
			return true
		}
	}
	return false
}

// parallelDegree turns an estimated (SSC-tightened, where soft constraints
// apply) cardinality into a worker count: 0 means stay serial; otherwise
// the degree grows with the estimate — each doubling of rows past the
// threshold earns another worker, capped at Parallel — so soft-constraint
// selectivity directly decides how much hardware a plan fragment gets.
func (o *Optimizer) parallelDegree(est float64) int {
	if o.Parallel <= 1 || !o.limitFree {
		return 0
	}
	minRows := o.ParallelMinRows
	if minRows <= 0 {
		minRows = defaultParallelMinRows
	}
	if est < minRows {
		return 0
	}
	dop := 2
	for r := est / minRows; r >= 2 && dop < o.Parallel; r /= 2 {
		dop++
	}
	if dop > o.Parallel {
		dop = o.Parallel
	}
	return dop
}

func (o *Optimizer) lowerNode(n plan.Node) (exec.Operator, prop, error) {
	switch t := n.(type) {
	case *plan.Scan:
		op, pr := o.lowerScan(t)
		return op, pr, nil
	case *plan.Empty:
		return &exec.Values{Desc: "Empty (" + t.Reason + ")"}, prop{}, nil
	case *plan.Derived:
		return o.lower(t.Input)
	case *plan.JoinGroup:
		return o.lowerJoinGroup(t)
	case *plan.Project:
		in, pr, err := o.lower(t.Input)
		if err != nil {
			return nil, prop{}, err
		}
		pr.cost += pr.rows * costEmit * float64(len(t.Exprs)) * o.cpuBatch()
		return &exec.Project{Input: in, Exprs: t.Exprs}, pr, nil
	case *plan.Aggregate:
		if shortcut := o.tryIndexMinMax(t); shortcut != nil {
			return shortcut, prop{rows: 1, cost: costPage * 4}, nil
		}
		in, pr, err := o.lower(t.Input)
		if err != nil {
			return nil, prop{}, err
		}
		groups := o.estimateGroups(t, pr.rows)
		out := prop{rows: groups, cost: pr.cost + pr.rows*costHashProbe*o.cpuBatch() + groups*costEmit}
		if dop := o.parallelDegree(pr.rows); dop > 1 {
			if _, ok := in.(exec.PartitionedOperator); ok {
				return &exec.ParallelHashAggregate{Input: in, GroupBy: t.GroupBy, Aggs: t.Aggs, Redundant: t.Redundant, Workers: dop}, out, nil
			}
		}
		groupBy, aggs := t.GroupBy, t.Aggs
		if in2, gb2, ag2, ok := fuseAggJoinProjection(in, groupBy, aggs); ok {
			in, groupBy, aggs = in2, gb2, ag2
		}
		return &exec.HashAggregate{Input: in, GroupBy: groupBy, Aggs: aggs, Redundant: t.Redundant}, out, nil
	case *plan.Sort:
		in, pr, err := o.lower(t.Input)
		if err != nil {
			return nil, prop{}, err
		}
		if t.Eliminated || len(t.Keys) == 0 {
			return in, pr, nil
		}
		n := math.Max(pr.rows, 2)
		pr.cost += n * math.Log2(n) * costCompare
		return &exec.Sort{Input: in, Keys: t.Keys}, pr, nil
	case *plan.Filter:
		in, pr, err := o.lower(t.Input)
		if err != nil {
			return nil, prop{}, err
		}
		pr.cost += pr.rows * costRow * o.cpuBatch()
		pr.rows = math.Max(0, pr.rows*genericSelectivity(t.Conds))
		return &exec.Filter{Input: in, Conds: t.Conds}, pr, nil
	case *plan.Distinct:
		in, pr, err := o.lower(t.Input)
		if err != nil {
			return nil, prop{}, err
		}
		pr.cost += pr.rows * costHashProbe
		pr.rows = math.Max(1, pr.rows*0.5)
		return &exec.Distinct{Input: in}, pr, nil
	case *plan.Limit:
		in, pr, err := o.lower(t.Input)
		if err != nil {
			return nil, prop{}, err
		}
		if float64(t.N) < pr.rows {
			pr.rows = float64(t.N)
		}
		return &exec.Limit{Input: in, N: t.N}, pr, nil
	case *plan.UnionAll:
		var arms []exec.Operator
		total := prop{}
		for _, a := range t.Arms {
			op, pr, err := o.lower(a)
			if err != nil {
				return nil, prop{}, err
			}
			arms = append(arms, op)
			total.rows += pr.rows
			total.cost += pr.cost
		}
		return &exec.UnionAll{Arms: arms, Pruned: t.Pruned}, total, nil
	default:
		return nil, prop{}, fmt.Errorf("opt: cannot lower %T", n)
	}
}

// tryIndexMinMax answers a scalar aggregation consisting solely of MIN/MAX
// over indexed, NOT NULL columns of an unfiltered scan from the index ends
// (§4.2's runtime shortcut, kept exact by using the index rather than a
// stored min/max). Nullable columns are excluded because index order puts
// NULL first, which MIN must ignore.
func (o *Optimizer) tryIndexMinMax(a *plan.Aggregate) exec.Operator {
	if o.NoIndexes || len(a.GroupBy) > 0 || len(a.Aggs) == 0 {
		return nil
	}
	scan, ok := a.Input.(*plan.Scan)
	if !ok || scan.Entry == nil || len(scan.Filter) > 0 {
		return nil
	}
	specs := make([]exec.MinMaxSpec, 0, len(a.Aggs))
	for _, spec := range a.Aggs {
		var max bool
		switch spec.Kind {
		case sql.AggMin:
			max = false
		case sql.AggMax:
			max = true
		default:
			return nil
		}
		col, isCol := spec.Arg.(*expr.Column)
		if !isCol {
			return nil
		}
		ix := scan.Entry.IndexOn(col.Index)
		if ix == nil || len(ix.Ordinal) != 1 {
			return nil
		}
		if scan.Def.Columns[col.Index].Nullable {
			return nil
		}
		specs = append(specs, exec.MinMaxSpec{Index: ix, Max: max})
	}
	return &exec.IndexMinMax{Table: scan.Table, Heap: scan.Entry.Heap, Specs: specs}
}

// estimateGroups guesses the number of groups from group-column NDVs where
// provenance allows, capped by the input cardinality.
func (o *Optimizer) estimateGroups(a *plan.Aggregate, inputRows float64) float64 {
	if len(a.GroupBy) == 0 {
		return 1
	}
	inCols := a.Input.Cols()
	ndvProduct := 1.0
	known := false
	for gi, g := range a.GroupBy {
		if gi < len(a.Redundant) && a.Redundant[gi] {
			continue
		}
		c, ok := g.(*expr.Column)
		if !ok || c.Index >= len(inCols) {
			continue
		}
		ci := inCols[c.Index]
		if ci.SourceTable == "" {
			continue
		}
		te, err := o.Cat.Table(ci.SourceTable)
		if err != nil || te.Stats == nil {
			continue
		}
		if cs := te.Stats.Column(ci.SourceColumn); cs != nil && cs.NDV > 0 {
			ndvProduct *= float64(cs.NDV)
			known = true
		}
	}
	if known {
		return math.Max(1, math.Min(inputRows, ndvProduct))
	}
	return math.Max(1, inputRows/10)
}

// lowerScan performs cost-based access-path selection.
func (o *Optimizer) lowerScan(s *plan.Scan) (exec.Operator, prop) {
	heap := s.EntryHeap()
	if heap == nil {
		return &exec.Values{Desc: "Empty (no storage for " + s.Table + ")"}, prop{}
	}
	total, selected, informed := o.scanEstimate(s)
	pages := float64(heap.PageCount())
	prune := o.prunePreds(s)
	// Synopsis-aware page estimate: pages the skipper would prune right now
	// are free, and the rows on them are never materialized. Access-path
	// selection still compares the UNPRUNED sequential cost against index
	// paths — an index that beats a full scan is strictly more precise than
	// zone maps (it touches only matching rows' pages), and current synopsis
	// state is too volatile to let it veto an index. The pruned figures are
	// what the chosen sequential scan reports upward for join costing.
	readPages := pages
	if len(prune) > 0 {
		readPages = pages - float64(exec.CountSkippablePages(heap, prune))
	}
	readRows := total
	if pages > 0 {
		readRows = total * readPages / pages
	}
	best := exec.Operator(&exec.SeqScan{Table: s.Table, Heap: heap, Filter: s.Filter, Prune: prune})
	// The sequential scan's per-row filter CPU earns the batch discount
	// (its kernels run page-at-a-time); index paths below never do.
	bestCost := pages*costPage + total*costRow*o.cpuBatch()

	if s.Entry != nil && !o.NoIndexes {
		candidates := s.Entry.Indexes
		if s.PinnedIndex != nil {
			candidates = []*catalog.Index{s.PinnedIndex}
		}
		for _, ix := range candidates {
			if len(ix.Ordinal) != 1 {
				continue // composite range bounds are not planned yet
			}
			iv, bounded := o.leadingInterval(s, ix)
			if !bounded || iv.Empty() {
				continue
			}
			frac := 1.0
			cluster := 0.0
			if s.Entry.Stats != nil {
				cs := s.Entry.Stats.Column(ix.Columns[0])
				frac = cs.SelectivityInterval(iv)
				if cs != nil {
					// Map [0.5, 1] cluster ratio onto [0, 1] clustering
					// benefit (0.5 is what random order yields).
					cluster = math.Max(0, (cs.ClusterRatio-0.5)*2)
				}
			} else if iv.EqualityConstant != nil {
				frac = 0.05
			} else {
				frac = 1.0 / 3
			}
			matchRows := total * frac
			cost := indexScanCost(float64(ix.Tree.Height()), matchRows, pages, cluster, float64(heap.RowsPerPage()))
			if cost < bestCost || s.PinnedIndex == ix {
				lo, hi := boundsFor(iv)
				best = &exec.IndexScan{Table: s.Table, Heap: heap, Index: ix, Lo: lo, Hi: hi, Filter: s.Filter}
				bestCost = cost
			}
		}
	}
	// A surviving sequential scan goes parallel when the SSC-tightened
	// output estimate clears the threshold. Index scans stay serial: a
	// parallel key-space split would repeat root-to-leaf descents per
	// worker and break exact page-count parity with the serial plan.
	if ss, ok := best.(*exec.SeqScan); ok {
		// Report the synopsis-aware cost for the surviving sequential scan so
		// join ordering sees the pages it will actually read.
		bestCost = readPages*costPage + readRows*costRow*o.cpuBatch()
		if dop := o.parallelDegree(selected); dop > 1 {
			best = &exec.ParallelScan{Table: ss.Table, Heap: ss.Heap, Filter: ss.Filter, Prune: ss.Prune, Workers: dop}
		}
	}
	if len(informed) > 0 && o.nodeInformed != nil {
		o.nodeInformed[best] = informed
	}
	return best, prop{rows: math.Max(selected, 0), cost: bestCost}
}

// prunePreds assembles a scan's page-prune predicates: intervals extracted
// from its own sargable conjuncts (which already include hole-trimmed
// ranges) plus the prune-only predicates rewrite planted from correlations
// and interior join holes.
func (o *Optimizer) prunePreds(s *plan.Scan) []plan.PrunePred {
	if o.NoPrune {
		return nil
	}
	preds := exec.FilterPrunePreds(s.Filter, len(s.Def.Columns))
	return append(preds, s.PrunePreds...)
}

// boundsFor converts an interval to B+tree scan bounds over a
// single-column key.
func boundsFor(iv expr.Interval) (lo, hi btree.Bound) {
	if iv.HasLo {
		lo = btree.Bound{Key: types.Row{iv.Lo}, Inclusive: iv.LoIncl}
	}
	if iv.HasHi {
		hi = btree.Bound{Key: types.Row{iv.Hi}, Inclusive: iv.HiIncl}
	}
	return lo, hi
}

// --- join ordering ---

// joinState is a DP entry: a lowered subtree covering a subset of the
// group's tables.
type joinState struct {
	op     exec.Operator
	rows   float64
	cost   float64
	layout []int // table indices in output order
}

func (o *Optimizer) lowerJoinGroup(jg *plan.JoinGroup) (exec.Operator, prop, error) {
	n := len(jg.Tables)
	if n == 0 {
		return &exec.Values{Desc: "Empty join group"}, prop{}, nil
	}
	// Leaf states; single-input conjuncts become leaf filters.
	leaves := make([]*joinState, n)
	conjTables := make([][]int, len(jg.Conjuncts))
	applied := make([]bool, len(jg.Conjuncts))
	for ci, c := range jg.Conjuncts {
		set := map[int]bool{}
		for _, ord := range expr.ColumnIndexes(c) {
			set[tableOfGroup(jg, ord)] = true
		}
		for ti := range set {
			conjTables[ci] = append(conjTables[ci], ti)
		}
	}
	for i, t := range jg.Tables {
		op, pr, err := o.lower(t)
		if err != nil {
			return nil, prop{}, err
		}
		off := jg.Offset(i)
		var filters []expr.Expr
		for ci, c := range jg.Conjuncts {
			if len(conjTables[ci]) == 1 && conjTables[ci][0] == i {
				filters = append(filters, expr.ShiftColumns(c, -off))
				applied[ci] = true
			}
		}
		if len(filters) > 0 {
			op = &exec.Filter{Input: op, Conds: filters}
			sel := genericSelectivity(filters)
			pr.rows *= sel
			pr.cost += pr.rows * costRow * o.cpuBatch()
			o.note(op, pr.rows)
		}
		leaves[i] = &joinState{op: op, rows: pr.rows, cost: pr.cost, layout: []int{i}}
	}
	if n == 1 {
		st := leaves[0]
		return st.op, prop{rows: st.rows, cost: st.cost}, nil
	}

	var final *joinState
	if n <= dpTableLimit && !o.ForceGreedyJoins {
		final = o.dpJoin(jg, leaves, conjTables, applied)
	} else {
		final = o.greedyJoin(jg, leaves, conjTables, applied)
	}
	// Restore the group's original column order if the chosen join order
	// permuted it.
	op := final.op
	if !identityLayout(final.layout) {
		remap := layoutMapping(jg, final.layout)
		cols := jg.Cols()
		exprs := make([]expr.Expr, len(cols))
		for orig := range cols {
			exprs[orig] = expr.NewColumn(cols[orig].Qualifier, cols[orig].Name, remap[orig], cols[orig].Kind)
		}
		op = &exec.Project{Input: op, Exprs: exprs}
		o.note(op, final.rows)
	}
	return op, prop{rows: final.rows, cost: final.cost}, nil
}

// fuseAggJoinProjection narrows a hash join feeding an aggregate to only
// the columns the aggregate reads. lowerJoinGroup restores the group's
// column order with a bare-column projection over the join; instead of
// materializing every joined column only to permute and then mostly drop
// them, the projection folds into the join's Proj list pruned to the
// aggregate's referenced ordinals, and the aggregate's expressions are
// remapped (as copies — plan nodes may be shared) onto the narrowed schema.
// A no-GROUP-BY COUNT(*) prunes every column: the join emits zero-width
// rows. ok is false when the input is not a hash join or bare-column
// projection of one, leaving the aggregate unchanged.
func fuseAggJoinProjection(in exec.Operator, groupBy []expr.Expr, aggs []plan.AggSpec) (exec.Operator, []expr.Expr, []plan.AggSpec, bool) {
	set := map[int]bool{}
	for _, g := range groupBy {
		for _, ord := range expr.ColumnIndexes(g) {
			set[ord] = true
		}
	}
	for _, a := range aggs {
		if a.Arg != nil {
			for _, ord := range expr.ColumnIndexes(a.Arg) {
				set[ord] = true
			}
		}
	}
	used := make([]int, 0, len(set))
	for ord := range set {
		used = append(used, ord)
	}
	sort.Ints(used)

	var hj *exec.HashJoin
	// toConcat maps an aggregate input ordinal to the join's concatenated
	// schema.
	var toConcat func(ord int) (int, bool)
	switch op := in.(type) {
	case *exec.Project:
		j, ok := op.Input.(*exec.HashJoin)
		if !ok || j.Proj != nil {
			return nil, nil, nil, false
		}
		cols := make([]*expr.Column, len(op.Exprs))
		for i, e := range op.Exprs {
			c, ok := e.(*expr.Column)
			if !ok || c.Index < 0 {
				return nil, nil, nil, false
			}
			cols[i] = c
		}
		hj = j
		toConcat = func(ord int) (int, bool) {
			if ord < 0 || ord >= len(cols) {
				return 0, false
			}
			return cols[ord].Index, true
		}
	case *exec.HashJoin:
		if op.Proj != nil {
			return nil, nil, nil, false
		}
		hj = op
		toConcat = func(ord int) (int, bool) { return ord, true }
	default:
		return nil, nil, nil, false
	}

	ords := make([]int, 0, len(used))
	remap := make(map[int]int, len(used))
	for pos, u := range used {
		c, ok := toConcat(u)
		if !ok {
			return nil, nil, nil, false
		}
		ords = append(ords, c)
		remap[u] = pos
	}
	hj.Proj = ords

	gb2 := make([]expr.Expr, len(groupBy))
	for i, g := range groupBy {
		gb2[i] = expr.RemapColumns(g, remap)
	}
	ag2 := make([]plan.AggSpec, len(aggs))
	for i, a := range aggs {
		if a.Arg != nil {
			a.Arg = expr.RemapColumns(a.Arg, remap)
		}
		ag2[i] = a
	}
	return hj, gb2, ag2, true
}

func identityLayout(layout []int) bool {
	for i, t := range layout {
		if i != t {
			return false
		}
	}
	return true
}

// layoutMapping maps original global ordinals to positions in the actual
// layout.
func layoutMapping(jg *plan.JoinGroup, layout []int) map[int]int {
	mapping := map[int]int{}
	pos := 0
	for _, ti := range layout {
		off := jg.Offset(ti)
		for k := 0; k < len(jg.Tables[ti].Cols()); k++ {
			mapping[off+k] = pos
			pos++
		}
	}
	return mapping
}

// dpJoin finds the cheapest join order by dynamic programming over table
// subsets.
func (o *Optimizer) dpJoin(jg *plan.JoinGroup, leaves []*joinState, conjTables [][]int, applied []bool) *joinState {
	n := len(leaves)
	dp := make([]*joinState, 1<<n)
	for i, st := range leaves {
		dp[1<<i] = st
	}
	full := (1 << n) - 1
	for mask := 1; mask <= full; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub > other {
				continue // each unordered split once; joinPair tries both builds
			}
			l, r := dp[sub], dp[other]
			if l == nil || r == nil {
				continue
			}
			cand := o.joinPairBest(jg, l, r, mask, conjTables, applied)
			if cand != nil && (dp[mask] == nil || cand.cost < dp[mask].cost) {
				dp[mask] = cand
			}
		}
	}
	return dp[full]
}

// greedyJoin repeatedly merges the pair with the cheapest join.
func (o *Optimizer) greedyJoin(jg *plan.JoinGroup, leaves []*joinState, conjTables [][]int, applied []bool) *joinState {
	states := append([]*joinState(nil), leaves...)
	for len(states) > 1 {
		bestI, bestJ := -1, -1
		var best *joinState
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				mask := maskOf(states[i].layout) | maskOf(states[j].layout)
				cand := o.joinPairBest(jg, states[i], states[j], mask, conjTables, applied)
				if cand != nil && (best == nil || cand.cost < best.cost) {
					best, bestI, bestJ = cand, i, j
				}
			}
		}
		merged := best
		states[bestI] = merged
		states = append(states[:bestJ], states[bestJ+1:]...)
	}
	return states[0]
}

func maskOf(layout []int) int {
	m := 0
	for _, t := range layout {
		m |= 1 << t
	}
	return m
}

// joinPairBest builds the cheapest join of two states, trying hash (both
// build sides) and nested loops.
func (o *Optimizer) joinPairBest(jg *plan.JoinGroup, l, r *joinState, mask int, conjTables [][]int, applied []bool) *joinState {
	lMask, rMask := maskOf(l.layout), maskOf(r.layout)
	// Conjuncts newly applicable at this join.
	var equi []equiPair
	var residual []expr.Expr
	sel := 1.0
	for ci, c := range jg.Conjuncts {
		if applied[ci] {
			continue
		}
		cm := 0
		for _, ti := range conjTables[ci] {
			cm |= 1 << ti
		}
		if cm&^mask != 0 || cm&lMask == 0 || cm&rMask == 0 {
			continue // not applicable here (or internal, handled earlier)
		}
		if ep, ok := o.extractEqui(jg, c, lMask); ok {
			equi = append(equi, ep)
			sel *= o.equiSelForPair(jg, ep, l.rows, r.rows)
		} else {
			residual = append(residual, c)
			sel *= genericSelectivity([]expr.Expr{c})
		}
	}
	outRows := math.Max(l.rows*r.rows*sel, 0)
	combined := append(append([]int(nil), l.layout...), r.layout...)
	lMap := layoutMapping(jg, l.layout)
	rMap := layoutMapping(jg, r.layout)
	cMap := layoutMapping(jg, combined)

	var best *joinState
	if len(equi) > 0 {
		// Hash join, build on left state. Key columns carry their real
		// kinds so the executor's typed single-key probe path can engage.
		groupCols := jg.Cols()
		kindOf := func(ord int) types.Kind {
			if ord >= 0 && ord < len(groupCols) {
				return groupCols[ord].Kind
			}
			return types.KindNull
		}
		mk := func(build, probe *joinState, buildMap, probeMap map[int]int, layout []int, layoutMap map[int]int, swapped bool) *joinState {
			var lk, rk []expr.Expr
			for _, ep := range equi {
				bcol, pcol := ep.left, ep.right
				if swapped {
					bcol, pcol = ep.right, ep.left
				}
				lk = append(lk, expr.NewColumn("", "k", buildMap[bcol], kindOf(bcol)))
				rk = append(rk, expr.NewColumn("", "k", probeMap[pcol], kindOf(pcol)))
			}
			var res []expr.Expr
			for _, c := range residual {
				res = append(res, expr.RemapColumns(c, layoutMap))
			}
			cost := build.cost + probe.cost + (build.rows*costHashBuild+probe.rows*costHashProbe)*o.cpuBatch() + outRows*costEmit
			// The cost model is identical for both flavors, so Parallel=1
			// and Parallel=N choose the same join order; the partitioned
			// flavor is picked when the bigger side's estimate clears the
			// parallel threshold.
			var jop exec.Operator = &exec.HashJoin{Left: build.op, Right: probe.op, LeftKeys: lk, RightKey: rk, Residual: res}
			if dop := o.parallelDegree(math.Max(build.rows, probe.rows)); dop > 1 {
				jop = &exec.PartitionedHashJoin{Left: build.op, Right: probe.op, LeftKeys: lk, RightKey: rk, Residual: res, Workers: dop}
			}
			o.note(jop, outRows)
			return &joinState{
				op:     jop,
				rows:   outRows,
				cost:   cost,
				layout: layout,
			}
		}
		cand := mk(l, r, lMap, rMap, combined, cMap, false)
		best = cand
		// Build on the right instead: output layout r++l.
		combinedRL := append(append([]int(nil), r.layout...), l.layout...)
		cRL := layoutMapping(jg, combinedRL)
		cand2 := mk(r, l, rMap, lMap, combinedRL, cRL, true)
		if cand2.cost < best.cost {
			best = cand2
		}
	}
	// Nested loops (both orientations).
	for _, ori := range [2][2]*joinState{{l, r}, {r, l}} {
		outer, inner := ori[0], ori[1]
		layout := append(append([]int(nil), outer.layout...), inner.layout...)
		lm := layoutMapping(jg, layout)
		var conds []expr.Expr
		for _, ep := range equi {
			conds = append(conds, expr.NewBinary(expr.OpEq,
				expr.NewColumn("", "l", lm[ep.left], types.KindNull),
				expr.NewColumn("", "r", lm[ep.right], types.KindNull)))
		}
		for _, c := range residual {
			conds = append(conds, expr.RemapColumns(c, lm))
		}
		cost := outer.cost + math.Max(outer.rows, 1)*inner.cost + outer.rows*inner.rows*costCompare + outRows*costEmit
		// NLJ re-runs its inner side per outer row; parallel leaves there
		// would spawn a worker pool per rerun, so both sides are demoted.
		outerOp, innerOp := outer.op, inner.op
		if o.Parallel > 1 {
			outerOp, innerOp = exec.Serialize(outerOp), exec.Serialize(innerOp)
		}
		cand := &joinState{
			op:     &exec.NestedLoopJoin{Outer: outerOp, Inner: innerOp, Cond: conds},
			rows:   outRows,
			cost:   cost,
			layout: layout,
		}
		o.note(cand.op, outRows)
		if best == nil || cand.cost < best.cost {
			best = cand
		}
	}
	return best
}

// equiPair is an equality conjunct split across the two join sides, in
// original global ordinals.
type equiPair struct {
	left, right int // left is on the l-state side
}

func (o *Optimizer) extractEqui(jg *plan.JoinGroup, c expr.Expr, lMask int) (equiPair, bool) {
	b, ok := c.(*expr.Binary)
	if !ok || b.Op != expr.OpEq {
		return equiPair{}, false
	}
	lc, lok := b.L.(*expr.Column)
	rc, rok := b.R.(*expr.Column)
	if !lok || !rok {
		return equiPair{}, false
	}
	lt := tableOfGroup(jg, lc.Index)
	if lMask&(1<<lt) != 0 {
		return equiPair{left: lc.Index, right: rc.Index}, true
	}
	return equiPair{left: rc.Index, right: lc.Index}, true
}

func (o *Optimizer) equiSelForPair(jg *plan.JoinGroup, ep equiPair, lRows, rRows float64) float64 {
	mkScanCol := func(ord int) scanCol {
		ti := tableOfGroup(jg, ord)
		if s, ok := jg.Tables[ti].(*plan.Scan); ok {
			return scanCol{scan: s, name: s.Def.Columns[ord-jg.Offset(ti)].Name}
		}
		return scanCol{}
	}
	return o.equiJoinSelectivity(mkScanCol(ep.left), mkScanCol(ep.right), lRows, rRows)
}

// tableOfGroup returns which group input owns the global ordinal.
func tableOfGroup(jg *plan.JoinGroup, ord int) int {
	off := 0
	for i, t := range jg.Tables {
		n := len(t.Cols())
		if ord >= off && ord < off+n {
			return i
		}
		off += n
	}
	return -1
}

// genericSelectivity estimates conjunct selectivity without statistics.
func genericSelectivity(conds []expr.Expr) float64 {
	est := &stats.Estimator{}
	return est.Selectivity(conds)
}
