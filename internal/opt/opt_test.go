package opt

import (
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/exec"
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/schema"
	"softdb/internal/stats"
	"softdb/internal/types"
)

// setup builds a catalog with two joined tables and statistics.
func setup(t *testing.T, rows int) (*catalog.Catalog, *catalog.TableEntry, *catalog.TableEntry) {
	t.Helper()
	cat := catalog.New()
	big := mustTable("big",
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "k", Type: types.KindInt},
		schema.Column{Name: "v", Type: types.KindInt},
	)
	small := mustTable("small",
		schema.Column{Name: "k", Type: types.KindInt},
		schema.Column{Name: "label", Type: types.KindString},
	)
	bt, err := cat.CreateTable(big)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cat.CreateTable(small)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		bt.Heap.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 50)), types.NewInt(int64(i))})
	}
	for i := 0; i < 50; i++ {
		st.Heap.Insert(types.Row{types.NewInt(int64(i)), types.NewString("l")})
	}
	bt.Stats = stats.Collect(bt.Heap, 16)
	st.Stats = stats.Collect(st.Heap, 16)
	return cat, bt, st
}

func scanNode(te *catalog.TableEntry, alias string, filter ...expr.Expr) *plan.Scan {
	return &plan.Scan{Table: te.Def.Name, Alias: alias, Entry: te, Def: te.Def, Filter: filter}
}

func TestAccessPathSelection(t *testing.T) {
	cat, bt, _ := setup(t, 10000)
	if _, err := cat.CreateIndex("idx_id", "big", []string{"id"}, false); err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{Cat: cat}
	// Selective range: index.
	sel := scanNode(bt, "big",
		expr.NewBinary(expr.OpGe, expr.NewColumn("big", "id", 0, types.KindInt), expr.NewConst(types.NewInt(100))),
		expr.NewBinary(expr.OpLe, expr.NewColumn("big", "id", 0, types.KindInt), expr.NewConst(types.NewInt(120))),
	)
	res, err := o.Optimize(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Format(res.Root), "IndexScan") {
		t.Errorf("selective range should pick index:\n%s", exec.Format(res.Root))
	}
	if res.EstRows < 5 || res.EstRows > 100 {
		t.Errorf("estimate: %.1f", res.EstRows)
	}
	// Unselective: sequential.
	unsel := scanNode(bt, "big",
		expr.NewBinary(expr.OpGe, expr.NewColumn("big", "id", 0, types.KindInt), expr.NewConst(types.NewInt(0))),
	)
	res, err = o.Optimize(unsel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Format(res.Root), "SeqScan") {
		t.Errorf("unselective should seq scan:\n%s", exec.Format(res.Root))
	}
	// NoIndexes forces sequential even when selective.
	o.NoIndexes = true
	res, _ = o.Optimize(sel)
	if strings.Contains(exec.Format(res.Root), "IndexScan") {
		t.Error("NoIndexes should disable index paths")
	}
}

func TestPinnedIndex(t *testing.T) {
	cat, bt, _ := setup(t, 1000)
	ix, err := cat.CreateIndex("idx_id", "big", []string{"id"}, false)
	if err != nil {
		t.Fatal(err)
	}
	// A wide range normally prefers seq scan; pinning forces the index.
	s := scanNode(bt, "big",
		expr.NewBinary(expr.OpGe, expr.NewColumn("big", "id", 0, types.KindInt), expr.NewConst(types.NewInt(0))))
	s.PinnedIndex = ix
	o := &Optimizer{Cat: cat}
	res, err := o.Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Format(res.Root), "IndexScan") {
		t.Errorf("pinned index ignored:\n%s", exec.Format(res.Root))
	}
}

func joinGroup(bt, st *catalog.TableEntry) *plan.JoinGroup {
	// big(id,k,v) ⋈ small(k,label) on big.k = small.k; global ordinals:
	// big 0..2, small 3..4.
	return &plan.JoinGroup{
		Tables: []plan.Node{scanNode(bt, "b"), scanNode(st, "s")},
		Conjuncts: []expr.Expr{expr.Eq(
			expr.NewColumn("b", "k", 1, types.KindInt),
			expr.NewColumn("s", "k", 3, types.KindInt),
		)},
	}
}

func TestJoinLoweringProducesHashJoin(t *testing.T) {
	cat, bt, st := setup(t, 5000)
	o := &Optimizer{Cat: cat}
	res, err := o.Optimize(joinGroup(bt, st))
	if err != nil {
		t.Fatal(err)
	}
	text := exec.Format(res.Root)
	if !strings.Contains(text, "HashJoin") {
		t.Errorf("equi-join should hash:\n%s", text)
	}
	// Execute and validate count: every big row matches exactly one small.
	rows, err := exec.Collect(res.Root, &exec.Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5000 {
		t.Errorf("join rows: %d", len(rows))
	}
	// Column order restored: output must be big cols then small cols.
	if len(rows[0]) != 5 {
		t.Fatalf("arity: %d", len(rows[0]))
	}
	if rows[0][4].Kind() != types.KindString {
		t.Errorf("column order: %v", rows[0])
	}
	// Estimate within 3x.
	if res.EstRows < 5000/3 || res.EstRows > 5000*3 {
		t.Errorf("join estimate: %.0f", res.EstRows)
	}
}

func TestJoinOrderingThreeTables(t *testing.T) {
	cat, bt, st := setup(t, 3000)
	tiny := mustTable("tiny",
		schema.Column{Name: "k", Type: types.KindInt},
	)
	tt, err := cat.CreateTable(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tt.Heap.Insert(types.Row{types.NewInt(int64(i))})
	}
	tt.Stats = stats.Collect(tt.Heap, 4)
	jg := &plan.JoinGroup{
		Tables: []plan.Node{scanNode(bt, "b"), scanNode(st, "s"), scanNode(tt, "t")},
		Conjuncts: []expr.Expr{
			expr.Eq(expr.NewColumn("b", "k", 1, types.KindInt), expr.NewColumn("s", "k", 3, types.KindInt)),
			expr.Eq(expr.NewColumn("s", "k", 3, types.KindInt), expr.NewColumn("t", "k", 5, types.KindInt)),
		},
	}
	o := &Optimizer{Cat: cat}
	res, err := o.Optimize(jg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(res.Root, &exec.Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	// big.k in 0..49, tiny.k in 0..4 → 5 of 50 keys survive; 3000/50=60 per key.
	want := 60 * 5
	if len(rows) != want {
		t.Errorf("3-way join rows: %d want %d", len(rows), want)
	}
	// Greedy should produce the same result set.
	o.ForceGreedyJoins = true
	res2, err := o.Optimize(joinGroupCopy(jg, bt, st, tt))
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := exec.Collect(res2.Root, &exec.Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != want {
		t.Errorf("greedy join rows: %d want %d", len(rows2), want)
	}
}

func joinGroupCopy(jg *plan.JoinGroup, bt, st, tt *catalog.TableEntry) *plan.JoinGroup {
	return &plan.JoinGroup{
		Tables: []plan.Node{scanNode(bt, "b"), scanNode(st, "s"), scanNode(tt, "t")},
		Conjuncts: []expr.Expr{
			expr.Eq(expr.NewColumn("b", "k", 1, types.KindInt), expr.NewColumn("s", "k", 3, types.KindInt)),
			expr.Eq(expr.NewColumn("s", "k", 3, types.KindInt), expr.NewColumn("t", "k", 5, types.KindInt)),
		},
	}
}

func TestCrossJoinFallsBackToNLJ(t *testing.T) {
	cat, bt, st := setup(t, 100)
	jg := &plan.JoinGroup{Tables: []plan.Node{scanNode(bt, "b"), scanNode(st, "s")}}
	o := &Optimizer{Cat: cat}
	res, err := o.Optimize(jg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Format(res.Root), "NestedLoopJoin") {
		t.Errorf("cross join should be NLJ:\n%s", exec.Format(res.Root))
	}
	rows, _ := exec.Collect(res.Root, &exec.Ctx{})
	if len(rows) != 100*50 {
		t.Errorf("cross rows: %d", len(rows))
	}
}

func TestEmptyLowering(t *testing.T) {
	cat, _, _ := setup(t, 10)
	o := &Optimizer{Cat: cat}
	res, err := o.Optimize(&plan.Empty{Reason: "pruned"})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := exec.Collect(res.Root, &exec.Ctx{})
	if len(rows) != 0 || res.EstRows != 0 {
		t.Error("empty plan")
	}
}

func TestCardenasPages(t *testing.T) {
	if got := cardenasPages(100, 0); got != 0 {
		t.Errorf("k=0: %g", got)
	}
	if got := cardenasPages(100, 1); got < 0.9 || got > 1.1 {
		t.Errorf("k=1: %g", got)
	}
	if got := cardenasPages(100, 1e9); got != 100 {
		t.Errorf("huge k: %g", got)
	}
	// Monotone in k.
	prev := 0.0
	for k := 1.0; k < 1000; k *= 2 {
		got := cardenasPages(50, k)
		if got < prev {
			t.Fatalf("not monotone at k=%g", k)
		}
		prev = got
	}
}

func TestSSCEstimationToggle(t *testing.T) {
	cat, bt, _ := setup(t, 5000)
	s := scanNode(bt, "big",
		expr.NewBinary(expr.OpGe, expr.NewColumn("big", "v", 2, types.KindInt), expr.NewConst(types.NewInt(0))))
	s.EstOnly = []stats.EstimationPredicate{{
		Pred:       expr.NewBinary(expr.OpLt, expr.NewColumn("big", "id", 0, types.KindInt), expr.NewConst(types.NewInt(100))),
		Confidence: 0.9,
		Source:     "ssc",
	}}
	o := &Optimizer{Cat: cat}
	withTwin, err := o.Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	o.NoSSCEstimation = true
	without, err := o.Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if withTwin.EstRows >= without.EstRows {
		t.Errorf("twin should reduce estimate: %.0f vs %.0f", withTwin.EstRows, without.EstRows)
	}
}

func TestLimitAndSortLowering(t *testing.T) {
	cat, bt, _ := setup(t, 100)
	var top plan.Node = scanNode(bt, "big")
	top = &plan.Sort{Input: top, Keys: []plan.SortKey{{Ordinal: 2, Desc: true}}}
	top = &plan.Limit{Input: top, N: 3}
	o := &Optimizer{Cat: cat}
	res, err := o.Optimize(top)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := exec.Collect(res.Root, &exec.Ctx{})
	if len(rows) != 3 || rows[0][2].Int() != 99 {
		t.Errorf("top-3: %v", rows)
	}
	if res.EstRows != 3 {
		t.Errorf("limit estimate: %.1f", res.EstRows)
	}
	// Eliminated sort is skipped in lowering.
	el := &plan.Sort{Input: scanNode(bt, "big"), Keys: []plan.SortKey{{Ordinal: 0}}, Eliminated: true}
	res, _ = o.Optimize(el)
	if strings.Contains(exec.Format(res.Root), "Sort") {
		t.Error("eliminated sort should not lower")
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
