// Package opt is softdb's cost-based physical optimizer. It lowers logical
// plans to executable operator trees, choosing access paths (sequential vs
// index scans) and join orders/methods by estimated cost. Cardinality
// estimates come from collected statistics, optionally sharpened by the
// paper's §5.1 estimation-only twinned predicates.
package opt

import (
	"fmt"
	"math"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/plan"
	"softdb/internal/stats"
)

// Cost model weights. Page I/O dominates, as in the paper's reasoning; CPU
// terms break ties and keep huge intermediate results expensive.
const (
	costPage      = 1.0
	costRow       = 0.01
	costHashBuild = 0.02
	costHashProbe = 0.01
	costCompare   = 0.005
	costEmit      = 0.002
)

// batchCPUDiscount scales the per-row CPU terms of operators that run on
// the columnar batch path (SeqScan, Filter, Project, HashJoin,
// HashAggregate): their typed kernels amortize dispatch and predicate
// walks over whole pages, so a vectorized row costs a fraction of a
// row-at-a-time row. Page I/O terms are never discounted — batching does
// not change what is read.
const batchCPUDiscount = 1.0

// cpuBatch is the multiplier for a batch-capable operator's per-row CPU
// cost terms: 1 under -no-batch, batchCPUDiscount otherwise. Operators
// with no batched implementation (index scans, nested-loop and merge
// joins, Sort, Distinct) always pay full price.
func (o *Optimizer) cpuBatch() float64 {
	if o.NoBatch {
		return 1
	}
	return batchCPUDiscount
}

// defaultRowsPerLeaf approximates index entries per B+tree leaf for
// costing.
const defaultRowsPerLeaf = 32

// prop carries the optimizer's estimates for a lowered subtree.
type prop struct {
	rows float64
	cost float64
}

// scanEstimate estimates output rows for a scan given its filters and
// twinned predicates. When an AST (materialized or informational, §4.4)
// matches a subset of the filter conjuncts, its row count supplies the
// exact joint selectivity of that subset — the paper's "the optimizer uses
// the statistics from both the base tables and the ASTs involved for
// filter factor estimation".
// The informed return names the constraints/ASTs whose information
// sharpened the estimate (empty for a purely statistics-driven guess).
func (o *Optimizer) scanEstimate(s *plan.Scan) (total float64, selected float64, informed []string) {
	var ts *stats.TableStats
	var rowCount int64
	switch {
	case s.Summary != nil:
		ts = s.Summary.Stats
		if s.Summary.Heap != nil {
			rowCount = s.Summary.Heap.RowCount()
		} else {
			rowCount = s.Summary.RowCountEstimate
		}
	case s.Entry != nil:
		ts = s.Entry.Stats
		rowCount = s.Entry.Heap.RowCount()
	}
	filter := s.Filter
	baseFraction := 1.0
	if s.Entry != nil && !o.NoASTEstimation && rowCount > 0 {
		if frac, remaining, name, ok := o.astCoverage(s, rowCount); ok {
			baseFraction = frac
			filter = remaining
			informed = append(informed, name)
			o.event(obs.Event{
				Rule: "ast-estimation", Constraint: name, Mode: "AST",
				Confidence: 1, Applied: true,
				Detail: fmt.Sprintf("summary row count gives exact filter factor %.4f for %s", frac, s.Table),
			})
		}
	}
	est := o.estimatorFor(s, ts)
	twins := s.EstOnly
	if o.Masked != "" {
		kept := twins[:0:0]
		for _, ep := range twins {
			if !strings.EqualFold(ep.Source, o.Masked) {
				kept = append(kept, ep)
			}
		}
		twins = kept
	}
	var sel float64
	if len(twins) > 0 && !o.NoSSCEstimation {
		sel = est.SelectivityWithSSCs(filter, twins)
		for _, ep := range twins {
			informed = append(informed, ep.Source)
			o.event(obs.Event{
				Rule: "ssc-estimation", Constraint: ep.Source,
				Mode: catalog.ModeSoftStatistical.String(), Confidence: ep.Confidence,
				Applied: true,
				Detail:  fmt.Sprintf("twinned predicate %s tightens %s estimate", ep.Pred, s.Table),
			})
		}
	} else {
		sel = est.Selectivity(filter)
	}
	return float64(rowCount), float64(rowCount) * baseFraction * sel, informed
}

// astCoverage finds the AST over s's base table whose defining predicate is
// contained in the scan's conjuncts and covers the most of them, returning
// the AST's observed fraction and the conjuncts it does not account for.
func (o *Optimizer) astCoverage(s *plan.Scan, total int64) (frac float64, remaining []expr.Expr, name string, ok bool) {
	bestCovered := 0
	for _, st := range o.Cat.SummariesOn(s.Table) {
		if st.Where == nil || (o.Masked != "" && strings.EqualFold(st.Name, o.Masked)) {
			continue
		}
		astConjuncts := expr.SplitConjuncts(st.Where)
		contained := true
		for _, c := range astConjuncts {
			if !expr.ContainsConjunct(s.Filter, c) {
				contained = false
				break
			}
		}
		if !contained || len(astConjuncts) <= bestCovered {
			continue
		}
		var astRows int64
		if st.Heap != nil {
			astRows = st.Heap.RowCount()
		} else {
			astRows = st.RowCountEstimate
		}
		rest := make([]expr.Expr, 0, len(s.Filter))
		for _, c := range s.Filter {
			if !expr.ContainsConjunct(astConjuncts, c) {
				rest = append(rest, c)
			}
		}
		bestCovered = len(astConjuncts)
		frac = float64(astRows) / float64(total)
		remaining = rest
		name = st.Name
		ok = true
	}
	return frac, remaining, name, ok
}

func (o *Optimizer) estimatorFor(s *plan.Scan, ts *stats.TableStats) *stats.Estimator {
	est := &stats.Estimator{
		Stats: ts,
		ColumnName: func(ord int) string {
			if ord >= 0 && ord < len(s.Def.Columns) {
				return s.Def.Columns[ord].Name
			}
			return ""
		},
	}
	if s.Entry != nil {
		for _, vc := range s.Entry.Virtual {
			if vc.Stats != nil {
				est.Virtuals = append(est.Virtuals, stats.VirtualStat{Canon: vc.Canon, Stats: vc.Stats})
			}
		}
	}
	return est
}

// indexScanCost models a root-to-leaf descent, a leaf walk over the
// matching fraction, and distinct heap pages per the Cardenas estimate
// (the executor charges each heap page once per scan, modeling a buffer
// pool over the scan's working set).
func indexScanCost(height float64, matchRows, heapPages, cluster, rowsPerPage float64) float64 {
	leaves := math.Ceil(matchRows / defaultRowsPerLeaf)
	random := cardenasPages(heapPages, matchRows)
	sequential := math.Ceil(matchRows / math.Max(rowsPerPage, 1))
	touched := cluster*sequential + (1-cluster)*random
	return (height+leaves+touched)*costPage + matchRows*costRow
}

// cardenasPages estimates the distinct pages touched when fetching k rows
// from a table of p pages: p * (1 - (1 - 1/p)^k).
func cardenasPages(p, k float64) float64 {
	if p <= 0 || k <= 0 {
		return 0
	}
	if k >= p*32 {
		return p
	}
	return p * (1 - math.Pow(1-1/p, k))
}

// equiJoinSelectivity estimates 1/max(ndv_l, ndv_r) for an equi-join pair,
// falling back to 1/max(rows) without statistics.
func (o *Optimizer) equiJoinSelectivity(l scanCol, r scanCol, lRows, rRows float64) float64 {
	ndv := func(sc scanCol, rows float64) float64 {
		if sc.scan != nil {
			var ts *stats.TableStats
			if sc.scan.Summary != nil {
				ts = sc.scan.Summary.Stats
			} else if sc.scan.Entry != nil {
				ts = sc.scan.Entry.Stats
			}
			if cs := ts.Column(sc.name); cs != nil && cs.NDV > 0 {
				return float64(cs.NDV)
			}
		}
		if rows > 0 {
			return rows
		}
		return 1
	}
	d := math.Max(ndv(l, lRows), ndv(r, rRows))
	if d < 1 {
		d = 1
	}
	return 1 / d
}

// scanCol identifies a base column used in a join predicate.
type scanCol struct {
	scan *plan.Scan
	name string
}

// intervalFromFilter extracts the filter interval on the index's leading
// column and converts it to tree bounds plus the matching-fraction
// estimate.
func (o *Optimizer) leadingInterval(s *plan.Scan, ix *catalog.Index) (expr.Interval, bool) {
	iv, _ := expr.ExtractInterval(s.Filter, ix.Ordinal[0])
	if iv.IsUnbounded() {
		return iv, false
	}
	return iv, true
}
