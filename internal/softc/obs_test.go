package softc

import (
	"context"
	"log/slog"
	"math"
	"sort"
	"testing"

	"softdb/internal/obs"
)

// recordingHandler captures slog records so tests can assert on structured
// attributes rather than rendered text.
type recordingHandler struct {
	records *[]slog.Record
}

func (h recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h recordingHandler) Handle(_ context.Context, r slog.Record) error {
	*h.records = append(*h.records, r)
	return nil
}
func (h recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h recordingHandler) WithGroup(string) slog.Handler      { return h }

func attrValue(r slog.Record, key string) (slog.Value, bool) {
	var v slog.Value
	found := false
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == key {
			v = a.Value
			found = true
			return false
		}
		return true
	})
	return v, found
}

// Discovery and refresh logs must carry the constraint/table name as a
// structured field, not only inside the rendered message.
func TestStructuredLogCarriesConstraintName(t *testing.T) {
	cat, te := setupPurchase(t, 400, 0)
	var records []slog.Record
	m := NewManager(cat)
	m.Logger = slog.New(recordingHandler{records: &records})
	m.Metrics = obs.NewRegistry()

	cands, err := m.DiscoverTable("purchase")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands.Correlations) == 0 {
		t.Fatal("expected at least one mined correlation")
	}
	sel := m.SelectCorrelations(cands.Correlations, 1)
	if err := m.InstallCorrelations(sel); err != nil {
		t.Fatal(err)
	}
	name := sel[0].Corr.Name
	if err := m.RefreshCorrelation(name); err != nil {
		t.Fatal(err)
	}

	var sawDiscover, sawInstall, sawRefresh bool
	for _, r := range records {
		switch r.Message {
		case "discovery complete":
			sawDiscover = true
			if v, ok := attrValue(r, "table"); !ok || v.String() != "purchase" {
				t.Errorf("discovery record: table attr = %v, ok=%v", v, ok)
			}
		case "installed correlation":
			sawInstall = true
			if v, ok := attrValue(r, "constraint"); !ok || v.String() != name {
				t.Errorf("install record: constraint attr = %v, ok=%v, want %s", v, ok, name)
			}
		case "correlation refreshed", "correlation reactivated":
			sawRefresh = true
			if v, ok := attrValue(r, "constraint"); !ok || v.String() != name {
				t.Errorf("refresh record: constraint attr = %v, ok=%v, want %s", v, ok, name)
			}
			if v, ok := attrValue(r, "table"); !ok || v.String() != te.Def.Name {
				t.Errorf("refresh record: table attr = %v, ok=%v", v, ok)
			}
		}
	}
	if !sawDiscover || !sawInstall || !sawRefresh {
		t.Fatalf("missing structured records: discover=%v install=%v refresh=%v",
			sawDiscover, sawInstall, sawRefresh)
	}
	// Events lines are preserved alongside the structured stream.
	if len(m.Events) == 0 {
		t.Fatal("Events should still accumulate rendered lines")
	}
	// Lifecycle counters fired.
	if got := m.Metrics.Counter("softdb_discovery_runs_total").Value(); got != 1 {
		t.Errorf("discovery runs counter = %d, want 1", got)
	}
	if got := m.Metrics.Counter("softdb_ssc_refreshes_total").Value(); got != 1 {
		t.Errorf("ssc refreshes counter = %d, want 1", got)
	}
}

// A manager with no Logger and no Metrics must keep working (nil-safe path).
func TestManagerNilLoggerAndMetrics(t *testing.T) {
	cat, _ := setupPurchase(t, 100, 0)
	m := NewManager(cat)
	if _, err := m.DiscoverTable("purchase"); err != nil {
		t.Fatal(err)
	}
	if len(m.Events) == 0 {
		t.Fatal("Events should accumulate without a logger")
	}
}

func TestMarginOfErrorEdges(t *testing.T) {
	cases := []struct {
		mods, rows int64
		want       float64
	}{
		{0, 0, 1},   // zero rows: total uncertainty
		{5, 0, 1},   // mods against an empty table
		{0, -3, 1},  // negative row count clamps the same way
		{0, 100, 0}, // fresh verification
		{50, 100, 0.5},
		{150, 100, 1}, // more mods than rows caps at 1
		{100, 100, 1},
	}
	for _, c := range cases {
		if got := MarginOfError(c.mods, c.rows); got != c.want {
			t.Errorf("MarginOfError(%d, %d) = %v, want %v", c.mods, c.rows, got, c.want)
		}
	}
}

func TestEffectiveConfidenceEdges(t *testing.T) {
	cases := []struct {
		stated     float64
		mods, rows int64
		want       float64
	}{
		{1, 0, 100, 1},   // pristine: full stated confidence
		{1, 0, 0, 0},     // zero rows: margin 1 wipes it out
		{1, 200, 100, 0}, // mods > rows: margin capped at 1
		{0, 0, 100, 0},   // stated 0 stays 0
		{0, 50, 100, 0},  // never goes negative
		{0.9, 30, 100, 0.6},
		{0.2, 50, 100, 0}, // margin exceeds stated: clamps at 0
	}
	for _, c := range cases {
		got := EffectiveConfidence(c.stated, c.mods, c.rows)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EffectiveConfidence(%v, %d, %d) = %v, want %v",
				c.stated, c.mods, c.rows, got, c.want)
		}
	}
}

func TestCurrencyReportSortedByName(t *testing.T) {
	cat, te := setupPurchase(t, 300, 7)
	m := NewManager(cat)
	cands, err := m.DiscoverTable("purchase")
	if err != nil {
		t.Fatal(err)
	}
	// Install everything statistical we can find so the report has entries.
	if err := m.InstallCorrelations(m.SelectCorrelations(cands.Correlations, 0)); err != nil {
		t.Fatal(err)
	}
	rep := m.CurrencyReport()
	if len(rep) == 0 {
		t.Skip("no statistical characterizations mined on this dataset")
	}
	if !sort.SliceIsSorted(rep, func(i, j int) bool { return rep[i].Name < rep[j].Name }) {
		t.Errorf("CurrencyReport not sorted by name: %+v", rep)
	}
	n := te.Heap.RowCount()
	for _, e := range rep {
		if e.RowCount != n {
			t.Errorf("entry %s: RowCount = %d, want %d", e.Name, e.RowCount, n)
		}
		if want := MarginOfError(e.ModsSince, e.RowCount); e.Margin != want {
			t.Errorf("entry %s: Margin = %v, want %v", e.Name, e.Margin, want)
		}
		if want := EffectiveConfidence(e.Stated, e.ModsSince, e.RowCount); e.Effective != want {
			t.Errorf("entry %s: Effective = %v, want %v", e.Name, e.Effective, want)
		}
	}
}
