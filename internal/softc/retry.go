package softc

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"softdb/internal/fault"
)

// RetryPolicy governs retry-with-backoff for the asynchronous maintenance
// paths (SSC refresh, hole remining). Only transient errors — injected
// storage faults and whatever IsTransient recognizes — are retried; a
// genuine failure (missing constraint, type error) returns immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; <= 0 means 1 (no retry).
	MaxAttempts int
	// BaseDelay is the sleep before the second attempt; each further
	// attempt doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Sleep is swappable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the refresh paths' standard policy: five attempts
// with 10ms→1s exponential backoff.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 5,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    time.Second,
}

// IsTransient reports whether an error is worth retrying. Today that is
// exactly the injected storage faults; a real storage backend would add
// its I/O timeout classes here.
func IsTransient(err error) bool {
	return errors.Is(err, fault.ErrInjected)
}

// run executes f under the policy, consulting the manager's fault injector
// once per attempt (the seam the fault-injection suite drives) and backing
// off between transient failures. ctx cancellation is observed before
// every attempt. Backoff sleeps are charged to the named constraint's
// refresh cost in the economy ledger: time a flaky refresh spends waiting
// is maintenance overhead the constraint caused.
func (p RetryPolicy) run(ctx context.Context, m *Manager, site, name string, f func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	delay := p.BaseDelay
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := m.Fault.Attempt(site)
		if err == nil {
			err = f()
		}
		if err == nil {
			if a > 1 {
				m.log(slog.LevelInfo, "maintenance retry succeeded",
					fmt.Sprintf("%s: succeeded on attempt %d", site, a),
					"site", site, "attempt", a)
			}
			return nil
		}
		lastErr = err
		if !IsTransient(err) {
			return err
		}
		if a == attempts {
			break
		}
		m.log(slog.LevelWarn, "maintenance attempt failed",
			fmt.Sprintf("%s: attempt %d failed (%v), retrying in %s", site, a, err, delay),
			"site", site, "attempt", a, "err", err.Error(), "backoff", delay)
		sleep(delay)
		m.Econ.AddRefresh(name, delay)
		delay *= 2
		if p.MaxDelay > 0 && delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	return fmt.Errorf("softc: %s failed after %d attempts: %w", site, attempts, lastErr)
}

// RefreshCorrelationWithRetry is RefreshCorrelation behind the retry
// policy — the asynchronous maintenance entry point callers should use
// when the refresh may hit transient storage faults.
func (m *Manager) RefreshCorrelationWithRetry(ctx context.Context, name string, pol RetryPolicy) error {
	return pol.run(ctx, m, "softc.refresh-correlation", name, func() error {
		return m.RefreshCorrelation(name)
	})
}

// RefreshCheckConfidenceWithRetry is RefreshCheckConfidence behind the
// retry policy.
func (m *Manager) RefreshCheckConfidenceWithRetry(ctx context.Context, table, constraint string, pol RetryPolicy) (float64, error) {
	var conf float64
	err := pol.run(ctx, m, "softc.refresh-check", constraint, func() error {
		c, err := m.RefreshCheckConfidence(table, constraint)
		if err == nil {
			conf = c
		}
		return err
	})
	return conf, err
}
