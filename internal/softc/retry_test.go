package softc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/fault"
	"softdb/internal/types"
)

// shipCheck installs the ship3w SSC used by the refresh tests.
func shipCheck(t *testing.T, cat *catalog.Catalog) *catalog.Constraint {
	t.Helper()
	check := expr.NewBinary(expr.OpLe,
		expr.NewColumn("purchase", "ship_date", 2, types.KindDate),
		expr.NewBinary(expr.OpAdd,
			expr.NewColumn("purchase", "order_date", 1, types.KindDate),
			expr.NewConst(types.NewInt(21))))
	con := &catalog.Constraint{
		Name: "ship3w", Kind: catalog.Check, Mode: catalog.ModeSoftStatistical,
		Table: "purchase", CheckExpr: check, Confidence: 0.5,
	}
	if err := cat.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	return con
}

// noSleep is a retry policy that backs off instantly, recording delays.
func noSleep(p RetryPolicy, slept *[]time.Duration) RetryPolicy {
	p.Sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return p
}

// TestRetryRecoversFromTransientFaults: with attempt-site faults injected
// at 50%, the retry wrapper still lands the refresh and the confidence is
// the one the data supports.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	cat, _ := setupPurchase(t, 1000, 100) // 1% late
	shipCheck(t, cat)
	m := NewManager(cat)
	m.Fault = fault.New(fault.Config{Seed: 11, ReadErrProb: 0.5})
	var slept []time.Duration
	pol := noSleep(DefaultRetryPolicy, &slept)
	recovered := false
	for i := 0; i < 20; i++ {
		conf, err := m.RefreshCheckConfidenceWithRetry(context.Background(), "purchase", "ship3w", pol)
		if err != nil {
			// With p=0.5 and 5 attempts a full strikeout happens ~3% of the
			// time per call; it must still be the typed transient error.
			if !IsTransient(err) {
				t.Fatalf("refresh failed with a non-transient error: %v", err)
			}
			continue
		}
		if math.Abs(conf-0.99) > 0.001 {
			t.Fatalf("refresh under faults returned wrong confidence %g", conf)
		}
		recovered = true
	}
	if !recovered {
		t.Fatal("no refresh succeeded in 20 tries at 50% fault rate")
	}
	if len(slept) == 0 {
		t.Fatal("retries happened without backing off")
	}
}

// TestRetryBackoffDoublesAndCaps: delays follow Base, 2*Base, ... capped
// at MaxDelay, and the final error wraps the last attempt's cause.
func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	cat, _ := setupPurchase(t, 100, 0)
	shipCheck(t, cat)
	m := NewManager(cat)
	m.Fault = fault.New(fault.Config{Seed: 1, ReadErrProb: 1}) // every attempt fails
	var slept []time.Duration
	pol := noSleep(RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}, &slept)
	_, err := m.RefreshCheckConfidenceWithRetry(context.Background(), "purchase", "ship3w", pol)
	if err == nil {
		t.Fatal("refresh succeeded with a 100% fault rate")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("exhausted-retries error does not wrap the cause: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("backoff sequence = %v, want %v", slept, want)
	}
}

// TestRetryDoesNotRetryRealErrors: a genuine failure (unknown constraint)
// returns immediately, with no backoff.
func TestRetryDoesNotRetryRealErrors(t *testing.T) {
	cat, _ := setupPurchase(t, 100, 0)
	m := NewManager(cat)
	var slept []time.Duration
	pol := noSleep(DefaultRetryPolicy, &slept)
	_, err := m.RefreshCheckConfidenceWithRetry(context.Background(), "purchase", "no_such_constraint", pol)
	if err == nil {
		t.Fatal("refresh of a missing constraint succeeded")
	}
	if IsTransient(err) {
		t.Fatalf("real error classified transient: %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("real error was retried: %v", slept)
	}
}

// TestRetryObservesContext: cancellation between attempts stops the loop.
func TestRetryObservesContext(t *testing.T) {
	cat, _ := setupPurchase(t, 100, 0)
	shipCheck(t, cat)
	m := NewManager(cat)
	m.Fault = fault.New(fault.Config{Seed: 1, ReadErrProb: 1})
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	pol := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond,
		Sleep: func(time.Duration) { attempts++; cancel() }}
	_, err := m.RefreshCheckConfidenceWithRetry(ctx, "purchase", "ship3w", pol)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled retry loop returned %v", err)
	}
	if attempts != 1 {
		t.Fatalf("loop kept going after cancel: %d backoffs", attempts)
	}
}

// TestRetryCorrelationPath smokes the correlation refresh wrapper.
func TestRetryCorrelationPath(t *testing.T) {
	cat, _ := setupPurchase(t, 500, 0)
	m := NewManager(cat)
	c, err := m.DiscoverTable("purchase")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallCorrelations(m.SelectCorrelations(c.Correlations, 1)); err != nil {
		t.Fatal(err)
	}
	name := cat.Correlations("purchase")[0].Name
	m.Fault = fault.New(fault.Config{Seed: 5, ReadErrProb: 0.5})
	var slept []time.Duration
	if err := m.RefreshCorrelationWithRetry(context.Background(), name, noSleep(DefaultRetryPolicy, &slept)); err != nil {
		if !IsTransient(err) {
			t.Fatalf("correlation refresh failed hard: %v", err)
		}
	}
}
