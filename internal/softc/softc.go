// Package softc implements the paper's §3.2 soft-constraint lifecycle:
// discovery (driving the miners), selection (ranking candidates by
// estimated utility for the optimizer), installation into the catalog, and
// maintenance — asynchronous refresh of statistical soft constraints,
// reactivation, and the §3.3 currency/margin-of-error model.
package softc

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"time"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/fault"
	"softdb/internal/mining"
	"softdb/internal/obs"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// Manager drives the soft-constraint facility over one catalog.
type Manager struct {
	Cat *catalog.Catalog
	// Linear configures correlation mining.
	Linear mining.LinearMinerConfig
	// FDs configures dependency mining.
	FDs mining.FDMinerConfig
	// Events records lifecycle actions for inspection.
	Events []string
	// Logger, when set, receives every lifecycle action as a structured
	// record (constraint and table names as fields, not prose).
	Logger *slog.Logger
	// Metrics, when set, counts lifecycle actions (discovery runs, SSC
	// refreshes, probation promotions). A nil registry disables counting.
	Metrics *obs.Registry
	// Fault, when set, injects transient errors into maintenance attempts
	// (one decision per refresh attempt); the retry wrappers in retry.go
	// absorb them. Nil disables injection.
	Fault *fault.Injector
	// OnChange, when set, fires after every successful registry mutation
	// (install, refresh, remine, probation change). The durable engine
	// wires it to log a soft-registry image to the WAL, so mined state
	// survives a crash without being re-mined.
	OnChange func()
	// OnChangeNamed, when set, fires like OnChange but receives the names
	// of the mutated characterizations, so the caller can attribute the
	// registry-maintenance WAL write to specific constraints in the
	// economy ledger.
	OnChangeNamed func(names []string)
	// Econ, when set, is credited with the wall time of every refresh and
	// remine pass (including retry backoff), the maintenance side of the
	// per-constraint benefit/cost ledger. Nil disables the accounting.
	Econ *obs.Economy
}

// NewManager returns a manager with default miner configurations.
func NewManager(cat *catalog.Catalog) *Manager { return &Manager{Cat: cat} }

// log appends the rendered line to Events and, when a Logger is wired,
// emits msg as a structured record with the given attrs.
func (m *Manager) log(level slog.Level, msg string, line string, attrs ...any) {
	m.Events = append(m.Events, line)
	if m.Logger != nil {
		m.Logger.Log(context.Background(), level, msg, attrs...)
	}
}

func (m *Manager) count(name string) {
	m.Metrics.Counter(name).Inc()
}

// changed fires the change hooks after a successful registry mutation,
// naming the characterizations the mutation touched.
func (m *Manager) changed(names ...string) {
	if m.OnChangeNamed != nil {
		m.OnChangeNamed(names)
	}
	if m.OnChange != nil {
		m.OnChange()
	}
}

// Candidates is the output of a discovery pass over one table.
type Candidates struct {
	Table        string
	Correlations []*catalog.LinearCorrelation
	FDs          []mining.FD
	Ranges       []*catalog.Constraint
}

// DiscoverTable runs all single-table miners.
func (m *Manager) DiscoverTable(table string) (*Candidates, error) {
	te, err := m.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	c := &Candidates{Table: te.Def.Name}
	c.Correlations = mining.MineCorrelations(te.Def, te.Heap, m.Linear)
	c.FDs = mining.MineFDs(te.Def, te.Heap, m.FDs)
	c.Ranges = mining.MineRanges(te.Def, te.Heap, 0)
	m.count("softdb_discovery_runs_total")
	m.log(slog.LevelInfo, "discovery complete",
		fmt.Sprintf("discover %s: %d correlations, %d FDs, %d ranges",
			table, len(c.Correlations), len(c.FDs), len(c.Ranges)),
		"table", table,
		"correlations", len(c.Correlations), "fds", len(c.FDs), "ranges", len(c.Ranges))
	return c, nil
}

// --- selection ---

// ScoredCorrelation carries a utility estimate for ranking.
type ScoredCorrelation struct {
	Corr  *catalog.LinearCorrelation
	Score float64
	Why   string
}

// SelectCorrelations ranks discovered correlations by estimated optimizer
// utility, per the paper's selection stage: an absolute, selective envelope
// that can unlock an existing index is worth the most; a statistical
// envelope is worth less (estimation only) unless an exception AST could
// make it exact.
func (m *Manager) SelectCorrelations(cands []*catalog.LinearCorrelation, topN int) []ScoredCorrelation {
	var scored []ScoredCorrelation
	for _, lc := range cands {
		te, err := m.Cat.Table(lc.Table)
		if err != nil {
			continue
		}
		aOrd := te.Def.ColumnIndex(lc.ColA)
		bOrd := te.Def.ColumnIndex(lc.ColB)
		if aOrd < 0 || bOrd < 0 {
			continue
		}
		score := 0.0
		var why []string
		if lc.IsAbsolute() {
			score += 2
			why = append(why, "absolute (usable in rewrite)")
		} else {
			score += lc.Confidence
			why = append(why, fmt.Sprintf("statistical @%.2f (estimation only)", lc.Confidence))
		}
		// Index asymmetry: predicate introduction pays off when the derived
		// column has an index and the driving column does not.
		if te.IndexOn(aOrd) != nil && te.IndexOn(bOrd) == nil {
			score += 2
			why = append(why, fmt.Sprintf("index on %s, none on %s", lc.ColA, lc.ColB))
		}
		// Narrow envelopes select better.
		if stats := te.Stats; stats != nil {
			if cs := stats.Column(lc.ColA); cs != nil && !cs.Min.IsNull() && cs.Max.IsNumeric() {
				spread := cs.Max.Float() - cs.Min.Float()
				if spread > 0 {
					frac := 2 * lc.Eps / spread
					score += math.Max(0, 1-frac)
					why = append(why, fmt.Sprintf("envelope %.1f%% of range", 100*frac))
				}
			}
		}
		scored = append(scored, ScoredCorrelation{Corr: lc, Score: score, Why: strings.Join(why, "; ")})
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].Score > scored[j].Score })
	if topN > 0 && len(scored) > topN {
		scored = scored[:topN]
	}
	return scored
}

// --- installation ---

// InstallCorrelations registers the given correlations.
func (m *Manager) InstallCorrelations(sel []ScoredCorrelation) error {
	names := make([]string, 0, len(sel))
	for _, sc := range sel {
		if err := m.Cat.AddCorrelation(sc.Corr); err != nil {
			return err
		}
		names = append(names, sc.Corr.Name)
		m.log(slog.LevelInfo, "installed correlation",
			fmt.Sprintf("install correlation %s (score %.2f: %s)", sc.Corr.Name, sc.Score, sc.Why),
			"constraint", sc.Corr.Name, "table", sc.Corr.Table, "score", sc.Score)
	}
	m.changed(names...)
	return nil
}

// InstallFDs registers discovered dependencies as soft FD constraints.
func (m *Manager) InstallFDs(table string, fds []mining.FD) error {
	names := make([]string, 0, len(fds))
	for _, fd := range fds {
		con := fd.ToConstraint(table)
		if err := m.Cat.AddConstraint(con); err != nil {
			return err
		}
		names = append(names, con.Name)
		m.log(slog.LevelInfo, "installed FD",
			fmt.Sprintf("install FD %s: %s -> %s @%.3f", con.Name, strings.Join(fd.Det, ","), fd.Dep, fd.Confidence),
			"constraint", con.Name, "table", table, "confidence", fd.Confidence)
	}
	m.changed(names...)
	return nil
}

// InstallRanges registers min/max soft range constraints.
func (m *Manager) InstallRanges(ranges []*catalog.Constraint) error {
	names := make([]string, 0, len(ranges))
	for _, con := range ranges {
		if err := m.Cat.AddConstraint(con); err != nil {
			return err
		}
		names = append(names, con.Name)
		m.log(slog.LevelInfo, "installed range",
			fmt.Sprintf("install range %s", con.Name),
			"constraint", con.Name, "table", con.Table)
	}
	m.changed(names...)
	return nil
}

// --- maintenance ---

// RefreshCorrelation re-fits the correlation against the current data
// (asynchronous maintenance): confidence is recomputed for the stored
// envelope, currency counters reset, and an inactive correlation whose
// envelope again holds absolutely is reactivated.
func (m *Manager) RefreshCorrelation(name string) error {
	defer m.timeRefresh(name)()
	lc, ok := m.Cat.CorrelationByName(name)
	if !ok {
		return fmt.Errorf("softc: no correlation %s", name)
	}
	te, err := m.Cat.Table(lc.Table)
	if err != nil {
		return err
	}
	aOrd := te.Def.ColumnIndex(lc.ColA)
	bOrd := te.Def.ColumnIndex(lc.ColB)
	fit, err := mining.FitLinear(te.Heap, aOrd, bOrd)
	if err != nil {
		return err
	}
	// Keep the line, re-measure the envelope's confidence.
	conf := confidenceForEnvelope(te.Heap, aOrd, bOrd, lc.K, lc.B0, lc.Eps)
	prev := lc.Confidence
	lc.Confidence = conf
	lc.ModsSince = 0
	lc.VerifiedVersion = te.Heap.Version()
	m.count("softdb_ssc_refreshes_total")
	if !lc.Active && conf >= 1 {
		lc.Active = true
		m.log(slog.LevelInfo, "correlation reactivated",
			fmt.Sprintf("refresh %s: reactivated (confidence back to 1)", name),
			"constraint", name, "table", lc.Table)
	} else {
		m.log(slog.LevelInfo, "correlation refreshed",
			fmt.Sprintf("refresh %s: confidence %.4f -> %.4f (fit k=%.3f)", name, prev, conf, fit.K),
			"constraint", name, "table", lc.Table, "prev", prev, "confidence", conf)
	}
	m.Cat.Touch()
	m.changed(name)
	return nil
}

// timeRefresh starts a wall-clock measurement of one refresh/remine pass;
// the returned stop function credits the elapsed time to the named
// characterization's maintenance cost. Nil-Econ managers pay one closure.
func (m *Manager) timeRefresh(name string) func() {
	if m.Econ == nil {
		return func() {}
	}
	start := time.Now()
	return func() { m.Econ.AddRefresh(name, time.Since(start)) }
}

func confidenceForEnvelope(heap *storage.Heap, aOrd, bOrd int, k, b0, eps float64) float64 {
	var in, total int
	heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		a, b := row[aOrd], row[bOrd]
		if a.IsNull() || b.IsNull() {
			return true
		}
		total++
		if math.Abs(a.Float()-(k*b.Float()+b0)) <= eps {
			in++
		}
		return true
	})
	if total == 0 {
		return 1
	}
	return float64(in) / float64(total)
}

// RefreshCheckConfidence rescans the table and updates an SSC check
// constraint's confidence (the periodic runstats-like refresh of §3.3).
func (m *Manager) RefreshCheckConfidence(table, constraint string) (float64, error) {
	defer m.timeRefresh(constraint)()
	te, err := m.Cat.Table(table)
	if err != nil {
		return 0, err
	}
	var con *catalog.Constraint
	for _, c := range te.Constraints {
		if strings.EqualFold(c.Name, constraint) {
			con = c
			break
		}
	}
	if con == nil || con.Kind != catalog.Check {
		return 0, fmt.Errorf("softc: no check constraint %s on %s", constraint, table)
	}
	var ok, total int64
	var evalErr error
	te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		total++
		v, err := con.CheckExpr.Eval(row)
		if err != nil {
			evalErr = err
			return false
		}
		switch {
		case v.IsNull():
			ok++ // SQL check semantics: NULL passes
		case v.Kind() != types.KindBool:
			// A mistyped check expression is a type error, not a Bool()
			// accessor panic.
			evalErr = fmt.Errorf("softc: check %s evaluated to %s, not BOOL", constraint, v.Kind())
			return false
		case v.Bool():
			ok++
		}
		return true
	})
	if evalErr != nil {
		return 0, evalErr
	}
	conf := 1.0
	if total > 0 {
		conf = float64(ok) / float64(total)
	}
	prev := con.Confidence
	con.Confidence = conf
	con.ModsSince = 0
	con.VerifiedVersion = te.Heap.Version()
	m.count("softdb_ssc_refreshes_total")
	if !con.Active && conf >= 1 && con.Mode == catalog.ModeSoftAbsolute {
		con.Active = true
		m.log(slog.LevelInfo, "check constraint reactivated",
			fmt.Sprintf("refresh %s: reactivated", constraint),
			"constraint", constraint, "table", table)
	}
	m.Cat.Touch()
	m.log(slog.LevelInfo, "check confidence refreshed",
		fmt.Sprintf("refresh %s: confidence %.4f -> %.4f over %d rows", constraint, prev, conf, total),
		"constraint", constraint, "table", table, "prev", prev, "confidence", conf, "rows", total)
	m.changed(constraint)
	return conf, nil
}

// RemineJoinHoles replaces a hole set by re-running the discovery join —
// the asynchronous repair that restores optimality after cheap synchronous
// hole drops (§4.3).
func (m *Manager) RemineJoinHoles(name string, cfg mining.HoleMinerConfig) (int, error) {
	defer m.timeRefresh(name)()
	jh, ok := m.Cat.JoinHolesByName(name)
	if !ok {
		return 0, fmt.Errorf("softc: no join holes %s", name)
	}
	left, err := m.Cat.Table(jh.LeftTable)
	if err != nil {
		return 0, err
	}
	right, err := m.Cat.Table(jh.RightTable)
	if err != nil {
		return 0, err
	}
	fresh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: jh.JoinLeft, JoinRight: jh.JoinRight,
		AttrLeft: jh.AttrLeft, AttrRight: jh.AttrRight,
		Config: cfg,
	})
	if err != nil {
		return 0, err
	}
	jh.Holes = fresh.Holes
	jh.Active = true
	jh.ModsSince = 0
	jh.VerifiedVersion = left.Heap.Version()
	m.Cat.Touch()
	m.log(slog.LevelInfo, "join holes remined",
		fmt.Sprintf("remine %s: %d holes", name, len(jh.Holes)),
		"constraint", name, "holes", len(jh.Holes))
	m.changed(name)
	return len(jh.Holes), nil
}

// MarginOfError is §3.3's currency model: with u modifications since the
// last verification of a table of n rows, at most u/n of the rows can have
// drifted from the constraint statement, so the stated confidence c is
// bounded below by c - u/n.
func MarginOfError(modsSince, rowCount int64) float64 {
	if rowCount <= 0 {
		return 1
	}
	return math.Min(1, float64(modsSince)/float64(rowCount))
}

// EffectiveConfidence applies the margin of error to a stated confidence.
func EffectiveConfidence(stated float64, modsSince, rowCount int64) float64 {
	return math.Max(0, stated-MarginOfError(modsSince, rowCount))
}

// CurrencyEntry reports one soft characterization's staleness.
type CurrencyEntry struct {
	Name      string
	Kind      string
	Stated    float64
	ModsSince int64
	RowCount  int64
	Margin    float64
	Effective float64
}

// CurrencyReport lists the staleness of every statistical soft
// characterization in the catalog.
func (m *Manager) CurrencyReport() []CurrencyEntry {
	var out []CurrencyEntry
	for _, table := range m.Cat.TableNames() {
		te, err := m.Cat.Table(table)
		if err != nil {
			continue
		}
		n := te.Heap.RowCount()
		for _, con := range te.Constraints {
			if con.Mode != catalog.ModeSoftStatistical {
				continue
			}
			margin := MarginOfError(con.ModsSince, n)
			out = append(out, CurrencyEntry{
				Name: con.Name, Kind: con.Kind.String(), Stated: con.Confidence,
				ModsSince: con.ModsSince, RowCount: n, Margin: margin,
				Effective: EffectiveConfidence(con.Confidence, con.ModsSince, n),
			})
		}
		for _, lc := range m.Cat.Correlations(table) {
			if lc.IsAbsolute() {
				continue
			}
			margin := MarginOfError(lc.ModsSince, n)
			out = append(out, CurrencyEntry{
				Name: lc.Name, Kind: "LINEAR CORRELATION", Stated: lc.Confidence,
				ModsSince: lc.ModsSince, RowCount: n, Margin: margin,
				Effective: EffectiveConfidence(lc.Confidence, lc.ModsSince, n),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- probation (§3.2 dynamic selection) ---

// InstallOnProbation registers correlations in probationary state: writes
// maintain them (a violation deactivates), but the optimizer does not
// employ them yet.
func (m *Manager) InstallOnProbation(sel []ScoredCorrelation) error {
	names := make([]string, 0, len(sel))
	for _, sc := range sel {
		sc.Corr.Probation = true
		if err := m.Cat.AddCorrelation(sc.Corr); err != nil {
			return err
		}
		names = append(names, sc.Corr.Name)
		m.log(slog.LevelDebug, "installed on probation",
			fmt.Sprintf("probation: installed %s (score %.2f)", sc.Corr.Name, sc.Score),
			"constraint", sc.Corr.Name, "table", sc.Corr.Table, "score", sc.Score)
	}
	m.changed(names...)
	return nil
}

// Promote ends a correlation's probation if it survived: still active
// (never violated) and, for absolute envelopes, still exact against the
// current data.
func (m *Manager) Promote(name string) error {
	lc, ok := m.Cat.CorrelationByName(name)
	if !ok {
		return fmt.Errorf("softc: no correlation %s", name)
	}
	if !lc.Active {
		return fmt.Errorf("softc: %s was violated during probation; not promoting", name)
	}
	if lc.IsAbsolute() {
		exact, err := m.VerifyCorrelationExact(name)
		if err != nil {
			return err
		}
		if !exact {
			return fmt.Errorf("softc: %s drifted during probation; not promoting", name)
		}
	}
	lc.Probation = false
	m.Cat.Touch()
	m.count("softdb_probation_promotions_total")
	m.log(slog.LevelInfo, "probation promoted",
		fmt.Sprintf("probation: promoted %s", name),
		"constraint", name, "table", lc.Table)
	m.changed(name)
	return nil
}

// --- workload-directed selection (§3.2) ---

// WorkloadCounts maps table → column → number of query predicates seen
// referencing that column. The engine records these during planning.
type WorkloadCounts map[string]map[string]int64

// SelectCorrelationsForWorkload ranks like SelectCorrelations, with an
// additional bonus for correlations whose driving column (ColB, the one
// queries filter on) appears frequently in the observed workload — "input
// from ... the workload can likely be used to direct the search towards
// those characterizations that would be most beneficial" (§3.2).
func (m *Manager) SelectCorrelationsForWorkload(cands []*catalog.LinearCorrelation, topN int, wl WorkloadCounts) []ScoredCorrelation {
	scored := m.SelectCorrelations(cands, 0)
	for i := range scored {
		lc := scored[i].Corr
		if cols, ok := wl[strings.ToLower(lc.Table)]; ok {
			refs := cols[strings.ToLower(lc.ColB)]
			if refs > 0 {
				bonus := math.Min(2, math.Log2(float64(refs)+1))
				scored[i].Score += bonus
				scored[i].Why += fmt.Sprintf("; %d workload predicates on %s", refs, lc.ColB)
			}
		}
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].Score > scored[j].Score })
	if topN > 0 && len(scored) > topN {
		scored = scored[:topN]
	}
	return scored
}

// VerifyCorrelationExact rescans and reports whether the correlation holds
// absolutely right now (used before promoting an SSC envelope to ASC).
func (m *Manager) VerifyCorrelationExact(name string) (bool, error) {
	lc, ok := m.Cat.CorrelationByName(name)
	if !ok {
		return false, fmt.Errorf("softc: no correlation %s", name)
	}
	te, err := m.Cat.Table(lc.Table)
	if err != nil {
		return false, err
	}
	conf := confidenceForEnvelope(te.Heap,
		te.Def.ColumnIndex(lc.ColA), te.Def.ColumnIndex(lc.ColB), lc.K, lc.B0, lc.Eps)
	return conf >= 1, nil
}

// BuildExceptionPredicate renders the violation predicate of a check
// constraint (NOT check), used to declare the §4.4 exception AST.
func BuildExceptionPredicate(con *catalog.Constraint) expr.Expr {
	if con.CheckExpr == nil {
		return nil
	}
	return expr.NewUnary(expr.OpNot, con.CheckExpr)
}
