package softc

import (
	"math"
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/storage"
	"softdb/internal/types"
)

func setupPurchase(t *testing.T, n int, latEvery int) (*catalog.Catalog, *catalog.TableEntry) {
	t.Helper()
	cat := catalog.New()
	def := mustTable("purchase",
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "order_date", Type: types.KindDate},
		schema.Column{Name: "ship_date", Type: types.KindDate},
	)
	te, err := cat.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		lag := i % 20
		if latEvery > 0 && i%latEvery == 0 {
			lag = 90
		}
		te.Heap.Insert(types.Row{
			types.NewInt(int64(i)),
			types.NewDate(int64(i)),
			types.NewDate(int64(i + lag)),
		})
	}
	return cat, te
}

func TestDiscoverTable(t *testing.T) {
	cat, _ := setupPurchase(t, 500, 0)
	m := NewManager(cat)
	c, err := m.DiscoverTable("purchase")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Correlations) == 0 {
		t.Error("ship≈order correlation should be found")
	}
	if len(c.Ranges) != 3 {
		t.Errorf("ranges: %d", len(c.Ranges))
	}
	if len(m.Events) == 0 {
		t.Error("events should log discovery")
	}
}

func TestSelectCorrelationsPrefersIndexAsymmetry(t *testing.T) {
	cat, _ := setupPurchase(t, 500, 0)
	if _, err := cat.CreateIndex("idx_od", "purchase", []string{"order_date"}, false); err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat)
	c, _ := m.DiscoverTable("purchase")
	scored := m.SelectCorrelations(c.Correlations, 0)
	if len(scored) == 0 {
		t.Fatal("nothing scored")
	}
	// The top candidate should derive the indexed column (order_date as A).
	top := scored[0]
	if !strings.EqualFold(top.Corr.ColA, "order_date") {
		t.Errorf("top pick should target the indexed column: %s", top.Corr.Describe())
	}
	if !strings.Contains(top.Why, "index") {
		t.Errorf("why: %s", top.Why)
	}
	if err := m.InstallCorrelations(scored[:1]); err != nil {
		t.Fatal(err)
	}
	if len(cat.Correlations("purchase")) != 1 {
		t.Error("install should register")
	}
}

func TestRefreshCorrelationAndReactivation(t *testing.T) {
	cat, te := setupPurchase(t, 300, 0)
	m := NewManager(cat)
	lc := &catalog.LinearCorrelation{
		Table: "purchase", ColA: "ship_date", ColB: "order_date",
		K: 1, B0: 9.5, Eps: 10, Confidence: 1,
	}
	if err := cat.AddCorrelation(lc); err != nil {
		t.Fatal(err)
	}
	// Violating row, then deactivation (as the engine would do).
	te.Heap.Insert(types.Row{types.NewInt(9999), types.NewDate(0), types.NewDate(500)})
	if err := cat.DeactivateCorrelation(lc.Name); err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshCorrelation(lc.Name); err != nil {
		t.Fatal(err)
	}
	if lc.Active {
		t.Error("refresh must not reactivate while a violation exists")
	}
	if lc.Confidence >= 1 {
		// expected: confidence now reflects the violation
	} else if lc.Confidence < 0.99 {
		t.Errorf("confidence after one bad row of 301: %g", lc.Confidence)
	}
	// Remove the bad row and refresh again: reactivation.
	removeWhere(te, func(r types.Row) bool { return r[0].Int() == 9999 })
	if err := m.RefreshCorrelation(lc.Name); err != nil {
		t.Fatal(err)
	}
	if !lc.Active || lc.Confidence < 1 {
		t.Errorf("should reactivate: active=%v conf=%g", lc.Active, lc.Confidence)
	}
}

func removeWhere(te *catalog.TableEntry, pred func(types.Row) bool) {
	var ids []storage.RowID
	te.Heap.Scan(nil, func(id storage.RowID, row types.Row) bool {
		if pred(row) {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		te.Heap.Delete(id)
	}
}

func TestRefreshCheckConfidence(t *testing.T) {
	cat, te := setupPurchase(t, 1000, 100) // 1% late
	// ship_date <= order_date + 21 as SSC with a stale stated confidence.
	check := expr.NewBinary(expr.OpLe,
		expr.NewColumn("purchase", "ship_date", 2, types.KindDate),
		expr.NewBinary(expr.OpAdd,
			expr.NewColumn("purchase", "order_date", 1, types.KindDate),
			expr.NewConst(types.NewInt(21))))
	con := &catalog.Constraint{
		Name: "ship3w", Kind: catalog.Check, Mode: catalog.ModeSoftStatistical,
		Table: "purchase", CheckExpr: check, Confidence: 0.5,
	}
	if err := cat.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat)
	conf, err := m.RefreshCheckConfidence("purchase", "ship3w")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conf-0.99) > 0.001 {
		t.Errorf("confidence: %g, want ~0.99", conf)
	}
	if con.Confidence != conf || con.ModsSince != 0 {
		t.Error("refresh should update the catalog entry")
	}
	_ = te
}

func TestMarginOfErrorModel(t *testing.T) {
	// The paper's example: 1M rows, 1k updates/day ⇒ ~3% margin after a
	// month (§3.3).
	margin := MarginOfError(30*1000, 1_000_000)
	if math.Abs(margin-0.03) > 1e-9 {
		t.Errorf("30 days of updates: %g, want 0.03", margin)
	}
	if MarginOfError(5, 0) != 1 {
		t.Error("empty table: margin saturates")
	}
	if MarginOfError(1<<40, 100) != 1 {
		t.Error("margin caps at 1")
	}
	if EffectiveConfidence(0.99, 30*1000, 1_000_000) != 0.96 {
		t.Errorf("effective: %g", EffectiveConfidence(0.99, 30*1000, 1_000_000))
	}
}

func TestCurrencyReport(t *testing.T) {
	cat, te := setupPurchase(t, 100, 0)
	check := expr.NewBinary(expr.OpGe,
		expr.NewColumn("purchase", "ship_date", 2, types.KindDate),
		expr.NewColumn("purchase", "order_date", 1, types.KindDate))
	con := &catalog.Constraint{
		Name: "s1", Kind: catalog.Check, Mode: catalog.ModeSoftStatistical,
		Table: "purchase", CheckExpr: check, Confidence: 0.98,
	}
	if err := cat.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	con.ModsSince = 10
	m := NewManager(cat)
	report := m.CurrencyReport()
	if len(report) != 1 {
		t.Fatalf("report: %d entries", len(report))
	}
	e := report[0]
	if e.Margin != 0.1 || math.Abs(e.Effective-0.88) > 1e-9 {
		t.Errorf("entry: %+v", e)
	}
	_ = te
}

func TestBuildExceptionPredicate(t *testing.T) {
	check := expr.NewBinary(expr.OpLe,
		expr.NewColumn("t", "a", 0, types.KindInt),
		expr.NewConst(types.NewInt(5)))
	con := &catalog.Constraint{CheckExpr: check}
	p := BuildExceptionPredicate(con)
	ok, _ := expr.EvalBool(p, types.Row{types.NewInt(9)})
	if !ok {
		t.Error("violating row satisfies the exception predicate")
	}
	ok, _ = expr.EvalBool(p, types.Row{types.NewInt(3)})
	if ok {
		t.Error("conforming row does not")
	}
	if BuildExceptionPredicate(&catalog.Constraint{}) != nil {
		t.Error("nil check yields nil")
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
