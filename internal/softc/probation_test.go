package softc

import (
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/types"
)

func TestProbationLifecycle(t *testing.T) {
	cat, te := setupPurchase(t, 200, 0)
	m := NewManager(cat)
	lc := &catalog.LinearCorrelation{
		Table: "purchase", ColA: "ship_date", ColB: "order_date",
		K: 1, B0: 9.5, Eps: 10, Confidence: 1,
	}
	if err := m.InstallOnProbation([]ScoredCorrelation{{Corr: lc, Score: 3}}); err != nil {
		t.Fatal(err)
	}
	if !lc.Probation || !lc.Active {
		t.Fatalf("probation state: %+v", lc)
	}
	if lc.Usable() {
		t.Error("probationary correlations are not usable by the optimizer")
	}
	// Probation survived: promote.
	if err := m.Promote(lc.Name); err != nil {
		t.Fatal(err)
	}
	if lc.Probation || !lc.Usable() {
		t.Errorf("after promotion: %+v", lc)
	}
	_ = te
}

func TestPromoteRefusesViolated(t *testing.T) {
	cat, te := setupPurchase(t, 200, 0)
	m := NewManager(cat)
	lc := &catalog.LinearCorrelation{
		Table: "purchase", ColA: "ship_date", ColB: "order_date",
		K: 1, B0: 9.5, Eps: 10, Confidence: 1,
	}
	if err := m.InstallOnProbation([]ScoredCorrelation{{Corr: lc, Score: 3}}); err != nil {
		t.Fatal(err)
	}
	// A write violates the envelope during probation (the engine would
	// deactivate; simulate that).
	te.Heap.Insert(types.Row{types.NewInt(9999), types.NewDate(0), types.NewDate(500)})
	if err := cat.DeactivateCorrelation(lc.Name); err != nil {
		t.Fatal(err)
	}
	if err := m.Promote(lc.Name); err == nil {
		t.Error("violated probationary correlation must not promote")
	}
}

func TestPromoteRefusesDrifted(t *testing.T) {
	cat, te := setupPurchase(t, 200, 0)
	m := NewManager(cat)
	lc := &catalog.LinearCorrelation{
		Table: "purchase", ColA: "ship_date", ColB: "order_date",
		K: 1, B0: 9.5, Eps: 10, Confidence: 1,
	}
	if err := m.InstallOnProbation([]ScoredCorrelation{{Corr: lc, Score: 3}}); err != nil {
		t.Fatal(err)
	}
	// Data drifted without the engine noticing (e.g. probation checks were
	// sampled): Promote re-verifies and refuses.
	te.Heap.Insert(types.Row{types.NewInt(9999), types.NewDate(0), types.NewDate(500)})
	if err := m.Promote(lc.Name); err == nil {
		t.Error("drifted correlation must not promote")
	}
}

func TestWorkloadDirectedSelection(t *testing.T) {
	cat, _ := setupPurchase(t, 400, 0)
	m := NewManager(cat)
	c, err := m.DiscoverTable("purchase")
	if err != nil {
		t.Fatal(err)
	}
	// Without workload input the ranking is index/selectivity-driven; with
	// a workload that filters heavily on ship_date, correlations driven by
	// ship_date (ColB) rise.
	wl := WorkloadCounts{"purchase": {"ship_date": 500}}
	scored := m.SelectCorrelationsForWorkload(c.Correlations, 0, wl)
	if len(scored) == 0 {
		t.Fatal("nothing scored")
	}
	if !strings.EqualFold(scored[0].Corr.ColB, "ship_date") {
		t.Errorf("workload should promote ship_date-driven correlations: %s", scored[0].Corr.Describe())
	}
	if !strings.Contains(scored[0].Why, "workload") {
		t.Errorf("why: %s", scored[0].Why)
	}
	// Empty workload degrades to the plain ranking.
	plain := m.SelectCorrelations(c.Correlations, 0)
	unweighted := m.SelectCorrelationsForWorkload(c.Correlations, 0, WorkloadCounts{})
	if len(plain) != len(unweighted) {
		t.Error("empty workload must not change the candidate set")
	}
}
