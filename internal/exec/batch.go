package exec

import (
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/vec"
)

// BatchOperator is an Operator that can additionally push columnar batches
// (vec.Batch: a borrowed row window plus selection vector and lazily
// extracted typed columns). The batch is borrowed: it and its Rows slice are
// only valid until the emit callback returns, unless Batch.Owned is set, in
// which case the row values may be retained without cloning (see DESIGN.md
// §16). The emit contract matches Operator.Run: one goroutine at a time.
//
// BatchCapable reports whether RunBatch actually streams batches end to end
// for this operator's current configuration (inputs included). Operators
// whose inputs are row-only report false so parents fall back to the row
// path instead of paying per-row batch-wrapping overhead.
type BatchOperator interface {
	Operator
	BatchCapable() bool
	RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error
}

// AsBatch returns op as a usable batch operator: it must both implement
// BatchOperator and report BatchCapable for its current shape.
func AsBatch(op Operator) (BatchOperator, bool) {
	bo, ok := op.(BatchOperator)
	if !ok || !bo.BatchCapable() {
		return nil, false
	}
	return bo, true
}

// RunBatched drives op in batch mode when it supports it, and otherwise
// adapts row-at-a-time output into single-row batches so batch-aware
// parents need only one code path.
func RunBatched(op Operator, ctx *Ctx, emit func(b *vec.Batch) bool) error {
	if bo, ok := AsBatch(op); ok {
		return bo.RunBatch(ctx, emit)
	}
	one := make([]types.Row, 1)
	var b vec.Batch
	return op.Run(ctx, func(row types.Row) bool {
		one[0] = row
		b.Reset(one)
		return emit(&b)
	})
}

// collectHintCap bounds how much CollectBatched preallocates from an
// optimizer estimate — estimates can be wildly high and are not worth more
// than a few MiB of speculative slice header.
const collectHintCap = 1 << 20

// CollectBatched runs op and gathers all output rows, using the batched
// path when the root operator supports it. Results are identical to
// Collect; only the emission granularity differs. hint is an optional row
// count estimate used to preallocate the result slice (<= 0 means unknown).
// Rows from owned batches are retained directly; borrowed batches are
// cloned row by row.
func CollectBatched(op Operator, ctx *Ctx, hint int) ([]types.Row, error) {
	bo, ok := AsBatch(op)
	if !ok {
		return Collect(op, ctx)
	}
	if ctx == nil {
		ctx = &Ctx{}
	}
	if hint < 0 {
		hint = 0
	}
	if hint > collectHintCap {
		hint = collectHintCap
	}
	out := make([]types.Row, 0, hint)
	err := bo.RunBatch(ctx, func(b *vec.Batch) bool {
		n := b.Len()
		if b.Owned {
			for i := 0; i < n; i++ {
				out = append(out, b.Row(i))
			}
			return true
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Row(i).Clone())
		}
		return true
	})
	return out, err
}

// progRunner owns the selection-vector scratch for one predicate program
// over a stream of batches. The program itself is immutable; all mutable
// state lives here, so a fresh progRunner per Run call keeps re-entrant
// plan-cached operators safe.
type progRunner struct {
	prog *expr.PredProgram
	// ident seeds the identity selection when the batch has none.
	ident []int32
	// bufs are the ping-pong output buffers stages write into.
	bufs [2][]int32
	next int
}

// run filters the batch's current selection through the program, returning
// the surviving selection and how many stages actually executed. When syn
// is non-nil, stages the page synopsis proves TRUE for every row are
// skipped without touching the data; ran==0 with a non-empty program means
// the whole batch qualified via synopsis alone. The returned selection is
// scratch owned by the runner — valid until the next run call.
func (pr *progRunner) run(b *vec.Batch, syn *storage.PageSynopsis) (sel []int32, ran int, err error) {
	cur := b.Sel
	if cur == nil {
		pr.ident = vec.IdentitySel(pr.ident, len(b.Rows))
		cur = pr.ident
	}
	for i := range pr.prog.Stages {
		if len(cur) == 0 {
			break
		}
		if syn != nil && stageProvable(&pr.prog.Stages[i], syn) {
			continue
		}
		buf := pr.bufs[pr.next]
		if cap(buf) < len(cur) {
			buf = make([]int32, 0, len(b.Rows))
		}
		out, serr := pr.prog.RunStage(i, b, cur, buf)
		if serr != nil {
			return nil, ran + 1, serr
		}
		pr.bufs[pr.next] = buf
		pr.next = 1 - pr.next
		cur = out
		ran++
	}
	return cur, ran, nil
}

// stageProvable reports whether the page synopsis proves the stage TRUE for
// every row of the page.
func stageProvable(st *expr.Stage, syn *storage.PageSynopsis) bool {
	if st.Mode == expr.StageGeneric {
		return false
	}
	cs := syn.Col(st.Col)
	if cs == nil {
		return false
	}
	hasBounds := !cs.Min.IsNull()
	var colIv expr.Interval
	if hasBounds {
		colIv = expr.Between(cs.Min, cs.Max, true, true)
	}
	return st.ProvableTrue(colIv, hasBounds, cs.Nulls, syn.Rows)
}

// shortCircuitSource attributes a whole-page filter short-circuit: the
// first constraint-derived prune predicate whose interval provably covers
// the page wins, mirroring makeSkipper's first-match page-skip attribution.
// Pages no installed characterization proved fall to "filter" — the query's
// own predicate bounds — which the economy ledger does not credit.
func shortCircuitSource(preds []plan.PrunePred, syn *storage.PageSynopsis) string {
	for _, p := range preds {
		if p.Source == "filter" {
			continue
		}
		if p.Check != nil && !p.Check() {
			continue
		}
		cs := syn.Col(p.Col)
		if cs == nil {
			continue
		}
		nonNull := syn.Rows - cs.Nulls
		if p.Exclude {
			// The page qualifies when no row lies in the excluded interval:
			// all NULL, or the value range disjoint from it.
			if nonNull == 0 ||
				(!cs.Min.IsNull() && expr.Between(cs.Min, cs.Max, true, true).Disjoint(p.Interval)) {
				return p.Source
			}
			continue
		}
		if cs.Nulls > 0 && !p.NullsQualify {
			continue
		}
		if nonNull > 0 && !cs.Min.IsNull() &&
			expr.Between(cs.Min, cs.Max, true, true).CoveredBy(p.Interval) {
			return p.Source
		}
	}
	return "filter"
}

// scanPageLoop is the vectorized scan kernel shared by SeqScan.RunBatch and
// ParallelScan partitions: one batch per heap page, filtered through a
// compiled predicate program with page-synopsis short-circuits. A page every
// filter stage is provably TRUE for skips per-row evaluation entirely — the
// dual of page skipping — and its rows are credited as short-circuited
// under the proving predicate's source.
func scanPageLoop(op string, heap *storage.Heap, pageLo, pageHi int,
	filter []expr.Expr, prune []plan.PrunePred, ctx *Ctx, emit func(*vec.Batch) bool) error {
	skip := makeSkipper(prune, ctx.Skips)
	prog := expr.CompilePredicate(filter)
	pr := progRunner{prog: prog}
	var batch vec.Batch
	var runErr error
	snap, tid := ctx.snapView()
	heap.ScanPagesAt(pageLo, pageHi, snap, tid, &ctx.IO, skip, func(rows []types.Row, syn *storage.PageSynopsis) bool {
		if err := ctx.checkpoint(op); err != nil {
			runErr = err
			return false
		}
		batch.Reset(rows)
		if len(prog.Stages) == 0 {
			return emit(&batch)
		}
		sel, ran, err := pr.run(&batch, syn)
		if err != nil {
			runErr = err
			return false
		}
		if ran == 0 {
			// Every stage was provably TRUE from the synopsis: the page
			// qualifies wholesale, no row was touched.
			n := int64(len(rows))
			ctx.AddShortCircuits(n)
			if ctx.Shorts != nil {
				ctx.Shorts.AddN(shortCircuitSource(prune, syn), n)
			}
			return emit(&batch)
		}
		if len(sel) == 0 {
			return true
		}
		batch.Sel = sel
		return emit(&batch)
	})
	return runErr
}

// makeSkipper compiles prune predicates into a per-page skip decision over
// published synopses. Predicates whose Check rejects (source constraint
// violated, on probation, or decayed below the confidence floor) are
// dropped for this execution — the scan falls back toward a full read.
// Returns nil when nothing can prune, which disables synopsis loads
// entirely. A non-nil rec is credited with each skipped page under the
// winning predicate's Source (dead-slot-only pages credit nothing — no
// predicate proved them).
func makeSkipper(preds []plan.PrunePred, rec *SkipRecorder) func(*storage.PageSynopsis) bool {
	active := make([]plan.PrunePred, 0, len(preds))
	for _, p := range preds {
		if p.Check == nil || p.Check() {
			active = append(active, p)
		}
	}
	if len(active) == 0 {
		return nil
	}
	return func(syn *storage.PageSynopsis) bool {
		if syn.Rows == 0 {
			// Only dead slots: nothing to read, safe to skip under any
			// predicate set.
			return true
		}
		for _, p := range active {
			cs := syn.Col(p.Col)
			if cs == nil {
				continue
			}
			nonNull := syn.Rows - cs.Nulls
			if p.Exclude {
				// Every row's value must provably lie inside the excluded
				// interval; NULLs are outside every interval, so any NULL
				// keeps the page.
				if cs.Nulls == 0 && nonNull > 0 &&
					expr.Between(cs.Min, cs.Max, true, true).CoveredBy(p.Interval) {
					rec.Add(p.Source)
					return true
				}
				continue
			}
			// Inclusion: qualifying rows need a value inside Interval. A
			// NULL can only qualify for derived predicates (NullsQualify);
			// the query's own sargable comparisons reject NULL.
			if cs.Nulls > 0 && p.NullsQualify {
				continue
			}
			if nonNull == 0 {
				rec.Add(p.Source)
				return true // all-NULL page, NULLs cannot qualify here
			}
			if expr.Between(cs.Min, cs.Max, true, true).Disjoint(p.Interval) {
				rec.Add(p.Source)
				return true
			}
		}
		return false
	}
}

// CountSkippablePages evaluates the prune predicates against a heap's
// current synopses and reports how many pages a scan would skip. The
// optimizer uses this for synopsis-aware page estimates; it touches no
// counters.
func CountSkippablePages(h *storage.Heap, preds []plan.PrunePred) int64 {
	skip := makeSkipper(preds, nil)
	if skip == nil {
		return 0
	}
	var n int64
	for pi := 0; pi < int(h.PageCount()); pi++ {
		if syn := h.Synopsis(pi); syn != nil && skip(syn) {
			n++
		}
	}
	return n
}

// FilterPrunePreds extracts prune predicates from a scan's own sargable
// conjuncts: every column with a bounded extracted interval yields an
// inclusion predicate (NULL never qualifies a comparison, so pages may be
// skipped regardless of their null counts). Hole-trimmed filter intervals
// are already part of the conjuncts and are picked up here for free.
func FilterPrunePreds(filter []expr.Expr, ncols int) []plan.PrunePred {
	var out []plan.PrunePred
	for ord := 0; ord < ncols; ord++ {
		iv, _ := expr.ExtractInterval(filter, ord)
		if iv.IsUnbounded() {
			continue
		}
		out = append(out, plan.PrunePred{Col: ord, Interval: iv, Source: "filter"})
	}
	return out
}
