package exec

import (
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// BatchOperator is an Operator that can additionally push page-sized row
// batches. The batch slice is borrowed: it is only valid until the emit
// callback returns, so consumers that retain rows must clone them (the rows
// themselves are heap-owned and immutable during a query, exactly as with
// row-at-a-time emit). The emit contract matches Operator.Run: one
// goroutine at a time.
type BatchOperator interface {
	Operator
	RunBatch(ctx *Ctx, emit func(rows []types.Row) bool) error
}

// RunBatched drives op in batch mode when it supports it, and otherwise
// adapts row-at-a-time output into single-row batches so batch-aware
// parents need only one code path.
func RunBatched(op Operator, ctx *Ctx, emit func(rows []types.Row) bool) error {
	if bo, ok := op.(BatchOperator); ok {
		return bo.RunBatch(ctx, emit)
	}
	one := make([]types.Row, 1)
	return op.Run(ctx, func(row types.Row) bool {
		one[0] = row
		return emit(one)
	})
}

// CollectBatched runs op and gathers all output rows, using the batched
// path when the root operator supports it. Results are identical to
// Collect; only the emission granularity differs.
func CollectBatched(op Operator, ctx *Ctx) ([]types.Row, error) {
	bo, ok := op.(BatchOperator)
	if !ok {
		return Collect(op, ctx)
	}
	if ctx == nil {
		ctx = &Ctx{}
	}
	var out []types.Row
	err := bo.RunBatch(ctx, func(rows []types.Row) bool {
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		return true
	})
	return out, err
}

// makeSkipper compiles prune predicates into a per-page skip decision over
// published synopses. Predicates whose Check rejects (source constraint
// violated, on probation, or decayed below the confidence floor) are
// dropped for this execution — the scan falls back toward a full read.
// Returns nil when nothing can prune, which disables synopsis loads
// entirely. A non-nil rec is credited with each skipped page under the
// winning predicate's Source (dead-slot-only pages credit nothing — no
// predicate proved them).
func makeSkipper(preds []plan.PrunePred, rec *SkipRecorder) func(*storage.PageSynopsis) bool {
	active := make([]plan.PrunePred, 0, len(preds))
	for _, p := range preds {
		if p.Check == nil || p.Check() {
			active = append(active, p)
		}
	}
	if len(active) == 0 {
		return nil
	}
	return func(syn *storage.PageSynopsis) bool {
		if syn.Rows == 0 {
			// Only dead slots: nothing to read, safe to skip under any
			// predicate set.
			return true
		}
		for _, p := range active {
			cs := syn.Col(p.Col)
			if cs == nil {
				continue
			}
			nonNull := syn.Rows - cs.Nulls
			if p.Exclude {
				// Every row's value must provably lie inside the excluded
				// interval; NULLs are outside every interval, so any NULL
				// keeps the page.
				if cs.Nulls == 0 && nonNull > 0 &&
					expr.Between(cs.Min, cs.Max, true, true).CoveredBy(p.Interval) {
					rec.Add(p.Source)
					return true
				}
				continue
			}
			// Inclusion: qualifying rows need a value inside Interval. A
			// NULL can only qualify for derived predicates (NullsQualify);
			// the query's own sargable comparisons reject NULL.
			if cs.Nulls > 0 && p.NullsQualify {
				continue
			}
			if nonNull == 0 {
				rec.Add(p.Source)
				return true // all-NULL page, NULLs cannot qualify here
			}
			if expr.Between(cs.Min, cs.Max, true, true).Disjoint(p.Interval) {
				rec.Add(p.Source)
				return true
			}
		}
		return false
	}
}

// CountSkippablePages evaluates the prune predicates against a heap's
// current synopses and reports how many pages a scan would skip. The
// optimizer uses this for synopsis-aware page estimates; it touches no
// counters.
func CountSkippablePages(h *storage.Heap, preds []plan.PrunePred) int64 {
	skip := makeSkipper(preds, nil)
	if skip == nil {
		return 0
	}
	var n int64
	for pi := 0; pi < int(h.PageCount()); pi++ {
		if syn := h.Synopsis(pi); syn != nil && skip(syn) {
			n++
		}
	}
	return n
}

// FilterPrunePreds extracts prune predicates from a scan's own sargable
// conjuncts: every column with a bounded extracted interval yields an
// inclusion predicate (NULL never qualifies a comparison, so pages may be
// skipped regardless of their null counts). Hole-trimmed filter intervals
// are already part of the conjuncts and are picked up here for free.
func FilterPrunePreds(filter []expr.Expr, ncols int) []plan.PrunePred {
	var out []plan.PrunePred
	for ord := 0; ord < ncols; ord++ {
		iv, _ := expr.ExtractInterval(filter, ord)
		if iv.IsUnbounded() {
			continue
		}
		out = append(out, plan.PrunePred{Col: ord, Interval: iv, Source: "filter"})
	}
	return out
}
