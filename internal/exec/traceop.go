package exec

import (
	"time"

	"softdb/internal/obs"
	"softdb/internal/types"
	"softdb/internal/vec"
)

// Instrument wraps an operator tree for tracing: every node is replaced by a
// span wrapper that accumulates emitted rows, busy time, and I/O deltas into
// an obs.SpanNode tree mirroring the plan shape. est, when non-nil, supplies
// the optimizer's row estimate for an original plan node so EXPLAIN ANALYZE
// can print estimated vs. actual side by side.
//
// The wrappers preserve the PartitionedOperator contract — a wrapped
// partitioned child still reports its partitions and serves RunPartition —
// so instrumented parallel plans keep their parallel execution strategy.
// Operators are stateless across runs; Instrument builds fresh wrappers
// around shared (plan-cached) operators, so concurrent queries can
// instrument the same plan independently.
func Instrument(root Operator, est func(Operator) (float64, bool)) (Operator, *obs.SpanNode) {
	return InstrumentInformed(root, est, nil)
}

// InstrumentInformed is Instrument with a second plan-node lookup:
// informed, when non-nil, names the constraints whose information shaped a
// node's cardinality estimate. The names land on the span tree so the
// engine can split per-node q-error into constraint-informed and blind
// populations for the economy ledger.
func InstrumentInformed(root Operator, est func(Operator) (float64, bool), informed func(Operator) []string) (Operator, *obs.SpanNode) {
	var wrap func(op Operator) (Operator, *obs.SpanNode)
	wrap = func(op Operator) (Operator, *obs.SpanNode) {
		node := &obs.SpanNode{Desc: op.Describe()}
		if est != nil {
			if rows, ok := est(op); ok {
				node.EstRows, node.HasEst = rows, true
			}
		}
		if informed != nil {
			node.Informed = informed(op)
		}
		if kids := op.Inputs(); len(kids) > 0 {
			wrapped := make([]Operator, len(kids))
			spans := make([]*obs.SpanNode, len(kids))
			for i, k := range kids {
				wrapped[i], spans[i] = wrap(k)
			}
			if rewired := withInputs(op, wrapped); rewired != nil {
				op = rewired
				node.Children = spans
			}
			// Unknown operator shape: keep the original children (they run
			// untraced) rather than break the plan.
		}
		return &spanOp{inner: op, node: node}, node
	}
	return wrap(root)
}

// MaxDegree reports the largest worker count any operator in the tree would
// use; 1 means a fully serial plan.
func MaxDegree(op Operator) int {
	deg := 1
	var walk func(Operator)
	walk = func(o Operator) {
		w := 0
		switch t := o.(type) {
		case *spanOp:
			walk(t.inner)
			return
		case *ParallelScan:
			w = t.Workers
		case *PartitionedHashJoin:
			w = t.Workers
		case *ParallelHashAggregate:
			w = t.Workers
		}
		if w > deg {
			deg = w
		}
		for _, c := range o.Inputs() {
			walk(c)
		}
	}
	walk(op)
	return deg
}

// spanOp measures one operator. Figures are inclusive of the subtree the
// wrapped Run drives, and cumulative across calls (nested-loop re-runs) and
// partition workers, which is why every accumulation is atomic.
type spanOp struct {
	inner Operator
	node  *obs.SpanNode
}

func (s *spanOp) Run(ctx *Ctx, emit func(types.Row) bool) error {
	return s.measure(ctx, func(wctx *Ctx, wemit func(types.Row) bool) error {
		return s.inner.Run(wctx, wemit)
	}, emit)
}

// BatchCapable implements BatchOperator by delegation, so a wrapped batch
// pipeline keeps its end-to-end batched execution.
func (s *spanOp) BatchCapable() bool {
	_, ok := AsBatch(s.inner)
	return ok
}

// RunBatch implements BatchOperator so instrumented plans keep columnar
// emission; deltas are measured around the inner batched run. Running in
// batch mode marks the span batched for EXPLAIN ANALYZE.
func (s *spanOp) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	s.node.Batched.Store(true)
	before := ctx.IO.Load()
	start := time.Now()
	var rows int64
	err := RunBatched(s.inner, ctx, func(b *vec.Batch) bool {
		rows += int64(b.Len())
		return emit(b)
	})
	after := ctx.IO.Load()
	s.node.Nanos.Add(time.Since(start).Nanoseconds())
	s.node.Rows.Add(rows)
	s.node.Pages.Add(after.PagesRead - before.PagesRead)
	s.node.PagesSkipped.Add(after.PagesSkipped - before.PagesSkipped)
	s.node.RowsRead.Add(after.RowsRead - before.RowsRead)
	s.node.Calls.Add(1)
	return err
}

// Partitions implements PartitionedOperator by delegation; a wrapped
// non-partitioned operator reports a single partition.
func (s *spanOp) Partitions() int {
	if p, ok := s.inner.(PartitionedOperator); ok {
		return p.Partitions()
	}
	return 1
}

// RunPartition implements PartitionedOperator. Calls for different
// partitions land concurrently with distinct worker Ctxs; the I/O delta of
// each call is measured against that call's own Ctx, so the atomic sums
// across workers equal one serial run.
func (s *spanOp) RunPartition(part int, ctx *Ctx, emit func(types.Row) bool) error {
	p, ok := s.inner.(PartitionedOperator)
	if !ok {
		return s.Run(ctx, emit)
	}
	return s.measure(ctx, func(wctx *Ctx, wemit func(types.Row) bool) error {
		return p.RunPartition(part, wctx, wemit)
	}, emit)
}

func (s *spanOp) measure(ctx *Ctx, run func(*Ctx, func(types.Row) bool) error, emit func(types.Row) bool) error {
	before := ctx.IO.Load()
	start := time.Now()
	var rows int64
	err := run(ctx, func(r types.Row) bool {
		rows++
		return emit(r)
	})
	after := ctx.IO.Load()
	s.node.Nanos.Add(time.Since(start).Nanoseconds())
	s.node.Rows.Add(rows)
	s.node.Pages.Add(after.PagesRead - before.PagesRead)
	s.node.PagesSkipped.Add(after.PagesSkipped - before.PagesSkipped)
	s.node.RowsRead.Add(after.RowsRead - before.RowsRead)
	s.node.Calls.Add(1)
	return err
}

func (s *spanOp) Describe() string { return s.inner.Describe() }

func (s *spanOp) Inputs() []Operator { return s.inner.Inputs() }

// withInputs returns a shallow copy of op with its children replaced, or nil
// when the operator is not a known shape. Copies keep the original operator
// untouched so plan-cached trees stay shareable.
func withInputs(op Operator, kids []Operator) Operator {
	switch t := op.(type) {
	case *Filter:
		return &Filter{Input: kids[0], Conds: t.Conds}
	case *Project:
		return &Project{Input: kids[0], Exprs: t.Exprs}
	case *Limit:
		return &Limit{Input: kids[0], N: t.N}
	case *Distinct:
		return &Distinct{Input: kids[0]}
	case *Sort:
		return &Sort{Input: kids[0], Keys: t.Keys}
	case *UnionAll:
		return &UnionAll{Arms: kids, Pruned: t.Pruned}
	case *NestedLoopJoin:
		return &NestedLoopJoin{Outer: kids[0], Inner: kids[1], Cond: t.Cond}
	case *HashJoin:
		return &HashJoin{Left: kids[0], Right: kids[1], LeftKeys: t.LeftKeys, RightKey: t.RightKey, Residual: t.Residual}
	case *MergeJoin:
		return &MergeJoin{Left: kids[0], Right: kids[1], LeftKey: t.LeftKey, RightKey: t.RightKey, Residual: t.Residual}
	case *HashAggregate:
		return &HashAggregate{Input: kids[0], GroupBy: t.GroupBy, Aggs: t.Aggs, Redundant: t.Redundant}
	case *PartitionedHashJoin:
		return &PartitionedHashJoin{Left: kids[0], Right: kids[1], LeftKeys: t.LeftKeys, RightKey: t.RightKey, Residual: t.Residual, Workers: t.Workers}
	case *ParallelHashAggregate:
		return &ParallelHashAggregate{Input: kids[0], GroupBy: t.GroupBy, Aggs: t.Aggs, Redundant: t.Redundant, Workers: t.Workers}
	default:
		return nil
	}
}

// Unwrap returns the operator beneath any instrumentation wrapper.
func Unwrap(op Operator) Operator {
	if s, ok := op.(*spanOp); ok {
		return s.inner
	}
	return op
}
