package exec

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/sql"
	"softdb/internal/types"
)

// accumulator folds rows for one aggregate in one group.
type accumulator struct {
	kind     sql.AggKind
	count    int64
	sum      float64
	isInt    bool
	min      types.Datum
	max      types.Datum
	seen     bool
	distinct map[string]bool
}

func newAccumulator(kind sql.AggKind) *accumulator {
	a := &accumulator{kind: kind, isInt: true, min: types.Null, max: types.Null}
	if kind == sql.AggCountDistinct {
		a.distinct = map[string]bool{}
	}
	return a
}

func (a *accumulator) add(v types.Datum) error {
	if a.kind == sql.AggCountStar {
		a.count++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	a.count++
	a.seen = true
	switch a.kind {
	case sql.AggCountDistinct:
		a.distinct[types.Row{v}.Key()] = true
	case sql.AggSum, sql.AggAvg:
		// Guard the Float() widening: strings would panic inside it, and a
		// user query (SUM over a string column) must get a type error, not
		// a crash.
		switch v.Kind() {
		case types.KindInt, types.KindFloat, types.KindBool, types.KindDate:
		default:
			return fmt.Errorf("exec: cannot aggregate %s value with SUM/AVG", v.Kind())
		}
		if v.Kind() == types.KindFloat {
			a.isInt = false
		}
		a.sum += v.Float()
	case sql.AggMin:
		if a.min.IsNull() || v.Compare(a.min) < 0 {
			a.min = v
		}
	case sql.AggMax:
		if a.max.IsNull() || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
	return nil
}

// merge folds another accumulator of the same kind into a. Parallel
// aggregation computes per-partition partials and merges them; merging is
// exact for every aggregate kind (COUNT/SUM add, MIN/MAX compare, DISTINCT
// union) and charges no counters, so partial+merge matches a serial run.
func (a *accumulator) merge(o *accumulator) {
	a.count += o.count
	a.sum += o.sum
	a.isInt = a.isInt && o.isInt
	a.seen = a.seen || o.seen
	if a.min.IsNull() || (!o.min.IsNull() && o.min.Compare(a.min) < 0) {
		a.min = o.min
	}
	if a.max.IsNull() || (!o.max.IsNull() && o.max.Compare(a.max) > 0) {
		a.max = o.max
	}
	for k := range o.distinct {
		a.distinct[k] = true
	}
}

func (a *accumulator) result() types.Datum {
	switch a.kind {
	case sql.AggCount, sql.AggCountStar:
		return types.NewInt(a.count)
	case sql.AggCountDistinct:
		return types.NewInt(int64(len(a.distinct)))
	case sql.AggSum:
		if !a.seen {
			return types.Null
		}
		if a.isInt {
			return types.NewInt(int64(a.sum))
		}
		return types.NewFloat(a.sum)
	case sql.AggAvg:
		if !a.seen {
			return types.Null
		}
		return types.NewFloat(a.sum / float64(a.count))
	case sql.AggMin:
		return a.min
	case sql.AggMax:
		return a.max
	default:
		return types.Null
	}
}

// HashAggregate groups its input by the GroupBy expressions and computes
// the aggregates. Output rows are group values followed by aggregate
// results, emitted in ascending group order (deterministic output). With no
// GroupBy it produces exactly one row even for empty input (scalar
// aggregation).
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []plan.AggSpec
	// Redundant marks group expressions excluded from the grouping key
	// because they are functionally determined by the others; their value
	// is taken from the group's first row.
	Redundant []bool
}

func (h *HashAggregate) isRedundant(i int) bool {
	return i < len(h.Redundant) && h.Redundant[i]
}

type aggGroup struct {
	key  types.Row
	accs []*accumulator
}

// aggTable accumulates groups for one HashAggregate run (or one parallel
// partition of it).
type aggTable struct {
	groups map[string]*aggGroup
	order  []string
}

func newAggTable() *aggTable { return &aggTable{groups: map[string]*aggGroup{}} }

// foldRow charges key-hash work and folds one input row into the table.
func (h *HashAggregate) foldRow(ctx *Ctx, row types.Row, t *aggTable) error {
	key := make(types.Row, len(h.GroupBy))
	hashKey := make(types.Row, 0, len(h.GroupBy))
	for i, g := range h.GroupBy {
		v, err := g.Eval(row)
		if err != nil {
			return err
		}
		key[i] = v
		if !h.isRedundant(i) {
			hashKey = append(hashKey, v)
		}
	}
	// Key-column work is charged per hashed column so grouping-key
	// reduction (redundant FD-determined columns) is visible.
	ctx.AddComparisons(int64(len(hashKey)))
	k := hashKey.Key()
	grp, ok := t.groups[k]
	if !ok {
		// Each new group retains its key row plus one accumulator per
		// aggregate (~accGroupBytes each); charge it to the query budget.
		if err := ctx.Reserve("HashAggregate", key.MemSize()+int64(len(h.Aggs))*accGroupBytes); err != nil {
			return err
		}
		grp = &aggGroup{key: key}
		for _, spec := range h.Aggs {
			grp.accs = append(grp.accs, newAccumulator(spec.Kind))
		}
		t.groups[k] = grp
		t.order = append(t.order, k)
	}
	ctx.AddProbes(1)
	for i, spec := range h.Aggs {
		if spec.Kind == sql.AggCountStar {
			if err := grp.accs[i].add(types.Null); err != nil {
				return err
			}
			continue
		}
		v, err := spec.Arg.Eval(row)
		if err != nil {
			return err
		}
		if err := grp.accs[i].add(v); err != nil {
			return err
		}
	}
	return nil
}

// accGroupBytes approximates one accumulator's retained size for budget
// accounting.
const accGroupBytes = 96

// emitGroups finalizes the table: scalar aggregation over empty input
// yields one identity row; otherwise groups are emitted in ascending key
// order (deterministic output).
func (h *HashAggregate) emitGroups(t *aggTable, emit func(types.Row) bool) error {
	if len(h.GroupBy) == 0 && len(t.groups) == 0 {
		out := make(types.Row, len(h.Aggs))
		for i, spec := range h.Aggs {
			out[i] = newAccumulator(spec.Kind).result()
		}
		emit(out)
		return nil
	}
	sort.Slice(t.order, func(i, j int) bool {
		return t.groups[t.order[i]].key.Compare(t.groups[t.order[j]].key) < 0
	})
	for _, k := range t.order {
		grp := t.groups[k]
		out := make(types.Row, 0, len(grp.key)+len(grp.accs))
		out = append(out, grp.key...)
		for _, acc := range grp.accs {
			out = append(out, acc.result())
		}
		if !emit(out) {
			return nil
		}
	}
	return nil
}

// Run implements Operator.
func (h *HashAggregate) Run(ctx *Ctx, emit func(types.Row) bool) error {
	t := newAggTable()
	var inner error
	err := h.Input.Run(ctx, func(row types.Row) bool {
		if err := h.foldRow(ctx, row, t); err != nil {
			inner = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	return h.emitGroups(t, emit)
}

// Describe implements Operator.
func (h *HashAggregate) Describe() string {
	var gs []string
	for i, g := range h.GroupBy {
		s := g.String()
		if h.isRedundant(i) {
			s += " [redundant]"
		}
		gs = append(gs, s)
	}
	var as []string
	for _, a := range h.Aggs {
		as = append(as, a.Describe())
	}
	if len(gs) == 0 {
		return fmt.Sprintf("HashAggregate scalar [%s]", strings.Join(as, ", "))
	}
	return fmt.Sprintf("HashAggregate by (%s) [%s]", strings.Join(gs, ", "), strings.Join(as, ", "))
}

// Inputs implements Operator.
func (h *HashAggregate) Inputs() []Operator { return []Operator{h.Input} }
