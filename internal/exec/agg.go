package exec

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/sql"
	"softdb/internal/types"
	"softdb/internal/vec"
)

// accumulator folds rows for one aggregate in one group.
type accumulator struct {
	kind     sql.AggKind
	count    int64
	sum      float64
	isInt    bool
	min      types.Datum
	max      types.Datum
	seen     bool
	distinct map[string]bool
}

func newAccumulator(kind sql.AggKind) *accumulator {
	a := &accumulator{kind: kind, isInt: true, min: types.Null, max: types.Null}
	if kind == sql.AggCountDistinct {
		a.distinct = map[string]bool{}
	}
	return a
}

func (a *accumulator) add(v types.Datum) error {
	if a.kind == sql.AggCountStar {
		a.count++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	a.count++
	a.seen = true
	switch a.kind {
	case sql.AggCountDistinct:
		a.distinct[types.Row{v}.Key()] = true
	case sql.AggSum, sql.AggAvg:
		// Guard the Float() widening: strings would panic inside it, and a
		// user query (SUM over a string column) must get a type error, not
		// a crash.
		switch v.Kind() {
		case types.KindInt, types.KindFloat, types.KindBool, types.KindDate:
		default:
			return fmt.Errorf("exec: cannot aggregate %s value with SUM/AVG", v.Kind())
		}
		if v.Kind() == types.KindFloat {
			a.isInt = false
		}
		a.sum += v.Float()
	case sql.AggMin:
		if a.min.IsNull() || v.Compare(a.min) < 0 {
			a.min = v
		}
	case sql.AggMax:
		if a.max.IsNull() || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
	return nil
}

// merge folds another accumulator of the same kind into a. Parallel
// aggregation computes per-partition partials and merges them; merging is
// exact for every aggregate kind (COUNT/SUM add, MIN/MAX compare, DISTINCT
// union) and charges no counters, so partial+merge matches a serial run.
func (a *accumulator) merge(o *accumulator) {
	a.count += o.count
	a.sum += o.sum
	a.isInt = a.isInt && o.isInt
	a.seen = a.seen || o.seen
	if a.min.IsNull() || (!o.min.IsNull() && o.min.Compare(a.min) < 0) {
		a.min = o.min
	}
	if a.max.IsNull() || (!o.max.IsNull() && o.max.Compare(a.max) > 0) {
		a.max = o.max
	}
	for k := range o.distinct {
		a.distinct[k] = true
	}
}

func (a *accumulator) result() types.Datum {
	switch a.kind {
	case sql.AggCount, sql.AggCountStar:
		return types.NewInt(a.count)
	case sql.AggCountDistinct:
		return types.NewInt(int64(len(a.distinct)))
	case sql.AggSum:
		if !a.seen {
			return types.Null
		}
		if a.isInt {
			return types.NewInt(int64(a.sum))
		}
		return types.NewFloat(a.sum)
	case sql.AggAvg:
		if !a.seen {
			return types.Null
		}
		return types.NewFloat(a.sum / float64(a.count))
	case sql.AggMin:
		return a.min
	case sql.AggMax:
		return a.max
	default:
		return types.Null
	}
}

// HashAggregate groups its input by the GroupBy expressions and computes
// the aggregates. Output rows are group values followed by aggregate
// results, emitted in ascending group order (deterministic output). With no
// GroupBy it produces exactly one row even for empty input (scalar
// aggregation).
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []plan.AggSpec
	// Redundant marks group expressions excluded from the grouping key
	// because they are functionally determined by the others; their value
	// is taken from the group's first row.
	Redundant []bool
}

func (h *HashAggregate) isRedundant(i int) bool {
	return i < len(h.Redundant) && h.Redundant[i]
}

type aggGroup struct {
	key  types.Row
	accs []*accumulator
}

// aggTable accumulates groups for one HashAggregate run (or one parallel
// partition of it).
type aggTable struct {
	groups map[string]*aggGroup
	order  []string
}

func newAggTable() *aggTable { return &aggTable{groups: map[string]*aggGroup{}} }

// foldRow charges key-hash work and folds one input row into the table.
func (h *HashAggregate) foldRow(ctx *Ctx, row types.Row, t *aggTable) error {
	key := make(types.Row, len(h.GroupBy))
	hashKey := make(types.Row, 0, len(h.GroupBy))
	for i, g := range h.GroupBy {
		v, err := g.Eval(row)
		if err != nil {
			return err
		}
		key[i] = v
		if !h.isRedundant(i) {
			hashKey = append(hashKey, v)
		}
	}
	// Key-column work is charged per hashed column so grouping-key
	// reduction (redundant FD-determined columns) is visible.
	ctx.AddComparisons(int64(len(hashKey)))
	k := hashKey.Key()
	grp, ok := t.groups[k]
	if !ok {
		// Each new group retains its key row plus one accumulator per
		// aggregate (~accGroupBytes each); charge it to the query budget.
		if err := ctx.Reserve("HashAggregate", key.MemSize()+int64(len(h.Aggs))*accGroupBytes); err != nil {
			return err
		}
		grp = &aggGroup{key: key}
		for _, spec := range h.Aggs {
			grp.accs = append(grp.accs, newAccumulator(spec.Kind))
		}
		t.groups[k] = grp
		t.order = append(t.order, k)
	}
	ctx.AddProbes(1)
	for i, spec := range h.Aggs {
		if spec.Kind == sql.AggCountStar {
			if err := grp.accs[i].add(types.Null); err != nil {
				return err
			}
			continue
		}
		v, err := spec.Arg.Eval(row)
		if err != nil {
			return err
		}
		if err := grp.accs[i].add(v); err != nil {
			return err
		}
	}
	return nil
}

// accGroupBytes approximates one accumulator's retained size for budget
// accounting.
const accGroupBytes = 96

// emitGroups finalizes the table: scalar aggregation over empty input
// yields one identity row; otherwise groups are emitted in ascending key
// order (deterministic output).
func (h *HashAggregate) emitGroups(t *aggTable, emit func(types.Row) bool) error {
	if len(h.GroupBy) == 0 && len(t.groups) == 0 {
		out := make(types.Row, len(h.Aggs))
		for i, spec := range h.Aggs {
			out[i] = newAccumulator(spec.Kind).result()
		}
		emit(out)
		return nil
	}
	sort.Slice(t.order, func(i, j int) bool {
		return t.groups[t.order[i]].key.Compare(t.groups[t.order[j]].key) < 0
	})
	for _, k := range t.order {
		grp := t.groups[k]
		out := make(types.Row, 0, len(grp.key)+len(grp.accs))
		out = append(out, grp.key...)
		for _, acc := range grp.accs {
			out = append(out, acc.result())
		}
		if !emit(out) {
			return nil
		}
	}
	return nil
}

// Run implements Operator.
func (h *HashAggregate) Run(ctx *Ctx, emit func(types.Row) bool) error {
	t := newAggTable()
	var inner error
	err := h.Input.Run(ctx, func(row types.Row) bool {
		if err := h.foldRow(ctx, row, t); err != nil {
			inner = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	return h.emitGroups(t, emit)
}

// BatchCapable implements BatchOperator: aggregation always emits its
// result set as one owned batch, whatever the input's shape.
func (h *HashAggregate) BatchCapable() bool { return true }

// RunBatch implements BatchOperator: batched inputs fold through typed
// accumulator loops (scalar aggregation and single integer-class grouping
// keys skip the per-row key materialization and string hashing entirely);
// row-only inputs fold through foldRow. The finished groups leave as one
// owned batch.
func (h *HashAggregate) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	t := newAggTable()
	var err error
	if in, ok := AsBatch(h.Input); ok {
		bf := newBatchFolder(h)
		var inner error
		err = in.RunBatch(ctx, func(b *vec.Batch) bool {
			if e := bf.fold(ctx, b, t); e != nil {
				inner = e
				return false
			}
			return true
		})
		if err == nil {
			err = inner
		}
		if err == nil {
			err = bf.finish(t)
		}
	} else {
		var inner error
		err = h.Input.Run(ctx, func(row types.Row) bool {
			if e := h.foldRow(ctx, row, t); e != nil {
				inner = e
				return false
			}
			return true
		})
		if err == nil {
			err = inner
		}
	}
	if err != nil {
		return err
	}
	var rows []types.Row
	if err := h.emitGroups(t, func(r types.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	var ob vec.Batch
	ob.Reset(rows)
	ob.Owned = true
	emit(&ob)
	return nil
}

// aggFoldMode selects how a batchFolder consumes input batches.
type aggFoldMode uint8

const (
	// foldGeneric folds through foldRow, row by row.
	foldGeneric aggFoldMode = iota
	// foldScalar is the no-GroupBy case: one group, typed column loops.
	foldScalar
	// foldIntKey groups by a single integer-class column keyed on its
	// float64 image (matching Row.Key's numeric normalization).
	foldIntKey
)

// aggArg is the compiled shape of one aggregate argument: a bare bound
// column enables typed folding, anything else evaluates per row.
type aggArg struct {
	col *expr.Column
	cls vec.Class
}

// batchFolder holds one RunBatch invocation's folding state. Fast-path
// groups accumulate here and convert into the aggTable in finish, so
// emitGroups (ordering, scalar identity row, parallel merge shape) is
// shared with the row path unchanged.
type batchFolder struct {
	h        *HashAggregate
	mode     aggFoldMode
	keyCol   *expr.Column
	args     []aggArg
	fast     map[float64]*aggGroup
	fastNull *aggGroup
}

func newBatchFolder(h *HashAggregate) *batchFolder {
	bf := &batchFolder{h: h, mode: foldGeneric}
	if len(h.GroupBy) == 0 {
		bf.mode = foldScalar
	} else if len(h.GroupBy) == 1 && !h.isRedundant(0) {
		// BOOL is excluded: its row-key image is TRUE/FALSE, not numeric.
		if c, ok := h.GroupBy[0].(*expr.Column); ok && c.Index >= 0 &&
			(c.Kind == types.KindInt || c.Kind == types.KindDate) {
			bf.mode = foldIntKey
			bf.keyCol = c
			bf.fast = map[float64]*aggGroup{}
		}
	}
	bf.args = make([]aggArg, len(h.Aggs))
	for i, spec := range h.Aggs {
		if spec.Kind == sql.AggCountStar {
			continue
		}
		if c, ok := spec.Arg.(*expr.Column); ok && c.Index >= 0 {
			bf.args[i] = aggArg{col: c, cls: vec.ClassOf(c.Kind)}
		}
	}
	return bf
}

func newAggGroupFor(h *HashAggregate, key types.Row) *aggGroup {
	grp := &aggGroup{key: key}
	for _, spec := range h.Aggs {
		grp.accs = append(grp.accs, newAccumulator(spec.Kind))
	}
	return grp
}

func (bf *batchFolder) fold(ctx *Ctx, b *vec.Batch, t *aggTable) error {
	switch bf.mode {
	case foldScalar:
		return bf.foldScalar(ctx, b, t)
	case foldIntKey:
		return bf.foldIntKey(ctx, b, t)
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		if err := bf.h.foldRow(ctx, b.Row(i), t); err != nil {
			return err
		}
	}
	return nil
}

// foldScalar folds a batch into the single scalar group with per-aggregate
// typed loops. Charges match foldRow: one probe per row, zero key-column
// comparisons (the hash key is empty).
func (bf *batchFolder) foldScalar(ctx *Ctx, b *vec.Batch, t *aggTable) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	ctx.AddProbes(int64(n))
	grp := t.groups[""]
	if grp == nil {
		key := make(types.Row, 0)
		if err := ctx.Reserve("HashAggregate", key.MemSize()+int64(len(bf.h.Aggs))*accGroupBytes); err != nil {
			return err
		}
		grp = newAggGroupFor(bf.h, key)
		t.groups[""] = grp
		t.order = append(t.order, "")
	}
	for i, spec := range bf.h.Aggs {
		if err := addScalarAgg(grp.accs[i], spec, bf.args[i], b); err != nil {
			return err
		}
	}
	return nil
}

// addScalarAgg folds one aggregate over the whole batch, preferring a typed
// column loop and falling back to per-row evaluation.
func addScalarAgg(acc *accumulator, spec plan.AggSpec, ap aggArg, b *vec.Batch) error {
	if spec.Kind == sql.AggCountStar {
		acc.count += int64(b.Len())
		return nil
	}
	if ap.col != nil {
		switch spec.Kind {
		case sql.AggCount:
			if done := addCountCol(acc, ap, b); done {
				return nil
			}
		case sql.AggSum, sql.AggAvg:
			if done := addSumCol(acc, ap, b); done {
				return nil
			}
		case sql.AggMin, sql.AggMax:
			if done := addMinMaxCol(acc, ap, b, spec.Kind == sql.AggMax); done {
				return nil
			}
		}
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		v, err := spec.Arg.Eval(b.Row(i))
		if err != nil {
			return err
		}
		if err := acc.add(v); err != nil {
			return err
		}
	}
	return nil
}

func addCountCol(acc *accumulator, ap aggArg, b *vec.Batch) bool {
	c := b.Col(ap.col.Index, ap.cls)
	if c == nil {
		return false
	}
	var cnt int64
	n := b.Len()
	for i := 0; i < n; i++ {
		if !c.Nulls[b.Index(i)] {
			cnt++
		}
	}
	acc.count += cnt
	if cnt > 0 {
		acc.seen = true
	}
	return true
}

func addSumCol(acc *accumulator, ap aggArg, b *vec.Batch) bool {
	n := b.Len()
	var cnt int64
	var sum float64
	switch ap.cls {
	case vec.ClassInt:
		// INT, DATE and BOOL all sum through their integer image, exactly
		// like add()'s Float() widening.
		c := b.Col(ap.col.Index, vec.ClassInt)
		if c == nil {
			return false
		}
		for i := 0; i < n; i++ {
			idx := b.Index(i)
			if c.Nulls[idx] {
				continue
			}
			cnt++
			sum += float64(c.Ints[idx])
		}
	case vec.ClassFloat:
		c := b.Col(ap.col.Index, vec.ClassFloat)
		if c == nil {
			return false
		}
		for i := 0; i < n; i++ {
			idx := b.Index(i)
			if c.Nulls[idx] {
				continue
			}
			cnt++
			sum += c.Floats[idx]
		}
		if cnt > 0 {
			acc.isInt = false
		}
	default:
		return false // strings type-error through the generic path
	}
	acc.count += cnt
	acc.sum += sum
	if cnt > 0 {
		acc.seen = true
	}
	return true
}

func addMinMaxCol(acc *accumulator, ap aggArg, b *vec.Batch, isMax bool) bool {
	n := b.Len()
	var cnt int64
	var bestD types.Datum
	found := false
	switch ap.col.Kind {
	case types.KindInt, types.KindDate:
		c := b.Col(ap.col.Index, vec.ClassInt)
		if c == nil {
			return false
		}
		var best int64
		for i := 0; i < n; i++ {
			idx := b.Index(i)
			if c.Nulls[idx] {
				continue
			}
			cnt++
			v := c.Ints[idx]
			if !found || (isMax && v > best) || (!isMax && v < best) {
				found, best = true, v
				bestD = b.Rows[idx][ap.col.Index]
			}
		}
	case types.KindFloat:
		c := b.Col(ap.col.Index, vec.ClassFloat)
		if c == nil {
			return false
		}
		var best float64
		for i := 0; i < n; i++ {
			idx := b.Index(i)
			if c.Nulls[idx] {
				continue
			}
			cnt++
			v := c.Floats[idx]
			if !found || (isMax && v > best) || (!isMax && v < best) {
				found, best = true, v
				bestD = b.Rows[idx][ap.col.Index]
			}
		}
	case types.KindString:
		c := b.Col(ap.col.Index, vec.ClassStr)
		if c == nil {
			return false
		}
		var best string
		for i := 0; i < n; i++ {
			idx := b.Index(i)
			if c.Nulls[idx] {
				continue
			}
			cnt++
			v := c.Strs[idx]
			if !found || (isMax && v > best) || (!isMax && v < best) {
				found, best = true, v
				bestD = b.Rows[idx][ap.col.Index]
			}
		}
	default:
		return false // BOOL keeps datum-order semantics via the generic path
	}
	acc.count += cnt
	if cnt > 0 {
		acc.seen = true
	}
	if found {
		// Strict comparison keeps the earliest extremal datum, exactly like
		// per-row add().
		if isMax {
			if acc.max.IsNull() || bestD.Compare(acc.max) > 0 {
				acc.max = bestD
			}
		} else {
			if acc.min.IsNull() || bestD.Compare(acc.min) < 0 {
				acc.min = bestD
			}
		}
	}
	return true
}

// foldIntKey groups a batch by the float64 image of the single key column.
// A batch the key column cannot extract from flips the folder to generic
// mode permanently, converting groups built so far.
func (bf *batchFolder) foldIntKey(ctx *Ctx, b *vec.Batch, t *aggTable) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	kc := b.Col(bf.keyCol.Index, vec.ClassInt)
	if kc == nil {
		if err := bf.finish(t); err != nil {
			return err
		}
		bf.mode = foldGeneric
		return bf.fold(ctx, b, t)
	}
	// One hashed key column and one probe per row, matching foldRow.
	ctx.AddComparisons(int64(n))
	ctx.AddProbes(int64(n))
	h := bf.h
	for i := 0; i < n; i++ {
		idx := b.Index(i)
		var grp *aggGroup
		if kc.Nulls[idx] {
			if grp = bf.fastNull; grp == nil {
				key := types.Row{types.Null}
				if err := ctx.Reserve("HashAggregate", key.MemSize()+int64(len(h.Aggs))*accGroupBytes); err != nil {
					return err
				}
				grp = newAggGroupFor(h, key)
				bf.fastNull = grp
			}
		} else {
			f := float64(kc.Ints[idx])
			if grp = bf.fast[f]; grp == nil {
				key := types.Row{b.Rows[idx][bf.keyCol.Index]}
				if err := ctx.Reserve("HashAggregate", key.MemSize()+int64(len(h.Aggs))*accGroupBytes); err != nil {
					return err
				}
				grp = newAggGroupFor(h, key)
				bf.fast[f] = grp
			}
		}
		row := b.Rows[idx]
		for ai, spec := range h.Aggs {
			acc := grp.accs[ai]
			if spec.Kind == sql.AggCountStar {
				acc.count++
				continue
			}
			var v types.Datum
			if ap := bf.args[ai]; ap.col != nil && ap.col.Index < len(row) {
				v = row[ap.col.Index]
			} else {
				var err error
				if v, err = spec.Arg.Eval(row); err != nil {
					return err
				}
			}
			if err := acc.add(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// finish converts fast-path groups into the aggTable under the same string
// keys foldRow would have used (the key row's Row.Key), so ordering and any
// later row-mode folding agree.
func (bf *batchFolder) finish(t *aggTable) error {
	if bf.mode != foldIntKey {
		return nil
	}
	insert := func(g *aggGroup) {
		k := g.key.Key()
		t.groups[k] = g
		t.order = append(t.order, k)
	}
	if bf.fastNull != nil {
		insert(bf.fastNull)
		bf.fastNull = nil
	}
	for _, g := range bf.fast {
		insert(g)
	}
	bf.fast = map[float64]*aggGroup{}
	return nil
}

// Describe implements Operator.
func (h *HashAggregate) Describe() string {
	var gs []string
	for i, g := range h.GroupBy {
		s := g.String()
		if h.isRedundant(i) {
			s += " [redundant]"
		}
		gs = append(gs, s)
	}
	var as []string
	for _, a := range h.Aggs {
		as = append(as, a.Describe())
	}
	if len(gs) == 0 {
		return fmt.Sprintf("HashAggregate scalar [%s]", strings.Join(as, ", "))
	}
	return fmt.Sprintf("HashAggregate by (%s) [%s]", strings.Join(gs, ", "), strings.Join(as, ", "))
}

// Inputs implements Operator.
func (h *HashAggregate) Inputs() []Operator { return []Operator{h.Input} }
