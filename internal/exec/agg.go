package exec

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/sql"
	"softdb/internal/types"
)

// accumulator folds rows for one aggregate in one group.
type accumulator struct {
	kind     sql.AggKind
	count    int64
	sum      float64
	isInt    bool
	min      types.Datum
	max      types.Datum
	seen     bool
	distinct map[string]bool
}

func newAccumulator(kind sql.AggKind) *accumulator {
	a := &accumulator{kind: kind, isInt: true, min: types.Null, max: types.Null}
	if kind == sql.AggCountDistinct {
		a.distinct = map[string]bool{}
	}
	return a
}

func (a *accumulator) add(v types.Datum) {
	if a.kind == sql.AggCountStar {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	a.seen = true
	switch a.kind {
	case sql.AggCountDistinct:
		a.distinct[types.Row{v}.Key()] = true
	case sql.AggSum, sql.AggAvg:
		if v.Kind() == types.KindFloat {
			a.isInt = false
		}
		a.sum += v.Float()
	case sql.AggMin:
		if a.min.IsNull() || v.Compare(a.min) < 0 {
			a.min = v
		}
	case sql.AggMax:
		if a.max.IsNull() || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
}

func (a *accumulator) result() types.Datum {
	switch a.kind {
	case sql.AggCount, sql.AggCountStar:
		return types.NewInt(a.count)
	case sql.AggCountDistinct:
		return types.NewInt(int64(len(a.distinct)))
	case sql.AggSum:
		if !a.seen {
			return types.Null
		}
		if a.isInt {
			return types.NewInt(int64(a.sum))
		}
		return types.NewFloat(a.sum)
	case sql.AggAvg:
		if !a.seen {
			return types.Null
		}
		return types.NewFloat(a.sum / float64(a.count))
	case sql.AggMin:
		return a.min
	case sql.AggMax:
		return a.max
	default:
		return types.Null
	}
}

// HashAggregate groups its input by the GroupBy expressions and computes
// the aggregates. Output rows are group values followed by aggregate
// results, emitted in ascending group order (deterministic output). With no
// GroupBy it produces exactly one row even for empty input (scalar
// aggregation).
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []plan.AggSpec
	// Redundant marks group expressions excluded from the grouping key
	// because they are functionally determined by the others; their value
	// is taken from the group's first row.
	Redundant []bool
}

func (h *HashAggregate) isRedundant(i int) bool {
	return i < len(h.Redundant) && h.Redundant[i]
}

type aggGroup struct {
	key  types.Row
	accs []*accumulator
}

// Run implements Operator.
func (h *HashAggregate) Run(ctx *Ctx, emit func(types.Row) bool) error {
	groups := map[string]*aggGroup{}
	var order []string
	var inner error
	err := h.Input.Run(ctx, func(row types.Row) bool {
		key := make(types.Row, len(h.GroupBy))
		hashKey := make(types.Row, 0, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				inner = err
				return false
			}
			key[i] = v
			if !h.isRedundant(i) {
				hashKey = append(hashKey, v)
			}
		}
		// Key-column work is charged per hashed column so grouping-key
		// reduction (redundant FD-determined columns) is visible.
		ctx.Comparisons += int64(len(hashKey))
		k := hashKey.Key()
		grp, ok := groups[k]
		if !ok {
			grp = &aggGroup{key: key}
			for _, spec := range h.Aggs {
				grp.accs = append(grp.accs, newAccumulator(spec.Kind))
			}
			groups[k] = grp
			order = append(order, k)
		}
		ctx.HashProbes++
		for i, spec := range h.Aggs {
			if spec.Kind == sql.AggCountStar {
				grp.accs[i].add(types.Null)
				continue
			}
			v, err := spec.Arg.Eval(row)
			if err != nil {
				inner = err
				return false
			}
			grp.accs[i].add(v)
		}
		return true
	})
	if err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		// Scalar aggregation over empty input: one row of identities.
		out := make(types.Row, len(h.Aggs))
		for i, spec := range h.Aggs {
			out[i] = newAccumulator(spec.Kind).result()
		}
		emit(out)
		return nil
	}
	// Deterministic output order: sort groups by key.
	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]].key.Compare(groups[order[j]].key) < 0
	})
	for _, k := range order {
		grp := groups[k]
		out := make(types.Row, 0, len(grp.key)+len(grp.accs))
		out = append(out, grp.key...)
		for _, acc := range grp.accs {
			out = append(out, acc.result())
		}
		if !emit(out) {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (h *HashAggregate) Describe() string {
	var gs []string
	for i, g := range h.GroupBy {
		s := g.String()
		if h.isRedundant(i) {
			s += " [redundant]"
		}
		gs = append(gs, s)
	}
	var as []string
	for _, a := range h.Aggs {
		as = append(as, a.Describe())
	}
	if len(gs) == 0 {
		return fmt.Sprintf("HashAggregate scalar [%s]", strings.Join(as, ", "))
	}
	return fmt.Sprintf("HashAggregate by (%s) [%s]", strings.Join(gs, ", "), strings.Join(as, ", "))
}

// Inputs implements Operator.
func (h *HashAggregate) Inputs() []Operator { return []Operator{h.Input} }
