package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/vec"
)

// PartitionedOperator is an Operator whose output can be produced in
// disjoint partitions. Unlike Run, RunPartition may be invoked for
// different partitions concurrently, each call with its own Ctx; each
// individual call still invokes its emit serially. Partitions are ordered:
// partition 0 covers the earliest storage order, so concatenating
// partitions 0..n-1 reproduces the serial scan order exactly. The sum of
// the partitions' counter charges equals one serial run.
type PartitionedOperator interface {
	Operator
	// Partitions reports how many partitions the output splits into;
	// 1 means no useful partitioning.
	Partitions() int
	// RunPartition produces the rows of partition part, 0 <= part < Partitions().
	RunPartition(part int, ctx *Ctx, emit func(types.Row) bool) error
}

// emitBatch is how many rows a parallel worker buffers before taking the
// shared emit lock, amortizing lock traffic on high-cardinality outputs.
const emitBatch = 128

// splitRange divides n units into parts contiguous blocks and returns the
// half-open range of block part. Earlier blocks take the remainder so
// sizes differ by at most one.
func splitRange(n, parts, part int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = part*base + min(part, rem)
	hi = lo + base
	if part < rem {
		hi++
	}
	return lo, hi
}

// runPartitioned drives parts workers, one per partition, each charging a
// private child Ctx (sharing the query lifecycle) that is merged into ctx
// on completion. Rows are batched per worker and emitted under a mutex,
// preserving the serial-emit contract. The first worker error is returned;
// an error or a false emit stops the remaining workers at their next batch
// boundary. A panicking worker is recovered into a KindPanic QueryError
// attributed to op, so one poisoned partition fails the query instead of
// the process.
func runPartitioned(op string, parts int, runPart func(part int, ctx *Ctx, emit func(types.Row) bool) error, ctx *Ctx, emit func(types.Row) bool) error {
	var (
		mu       sync.Mutex // serializes emit across workers
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	flush := func(buf []types.Row) bool {
		mu.Lock()
		defer mu.Unlock()
		if stop.Load() {
			return false
		}
		for _, r := range buf {
			if !emit(r) {
				stop.Store(true)
				return false
			}
		}
		return true
	}
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			wctx := ctx.Child()
			defer ctx.Merge(wctx)
			buf := make([]types.Row, 0, emitBatch)
			err := func() (err error) {
				defer wctx.recoverPanic(op, &err)
				return runPart(part, wctx, func(row types.Row) bool {
					buf = append(buf, row)
					if len(buf) < emitBatch {
						return true
					}
					ok := flush(buf)
					buf = buf[:0]
					return ok
				})
			}()
			if err == nil && len(buf) > 0 {
				flush(buf)
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				stop.Store(true)
			}
		}(p)
	}
	wg.Wait()
	return firstErr
}

// --- parallel scan ---

// ParallelScan reads a heap like SeqScan but splits it into contiguous
// page ranges scanned by a worker pool. Because partitions are disjoint
// page ranges, every page and live row is charged exactly once — the same
// totals as a serial SeqScan — which keeps the paper-style cost accounting
// comparable between serial and parallel plans.
type ParallelScan struct {
	Table   string
	Heap    *storage.Heap
	Filter  []expr.Expr
	Prune   []plan.PrunePred
	Workers int
}

// Partitions implements PartitionedOperator. The partition count is the
// worker count clamped to the page count, so no partition is empty.
func (s *ParallelScan) Partitions() int {
	pages := int(s.Heap.PageCount())
	w := s.Workers
	if w > pages {
		w = pages
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunPartition implements PartitionedOperator. Each partition prunes and
// batches its own page range; skip decisions depend only on the published
// synopses, so partition counters still sum to one serial scan exactly.
func (s *ParallelScan) RunPartition(part int, ctx *Ctx, emit func(types.Row) bool) error {
	lo, hi := splitRange(int(s.Heap.PageCount()), s.Partitions(), part)
	var runErr error
	skip := makeSkipper(s.Prune, ctx.Skips)
	op := "ParallelScan " + s.Table
	snap, tid := ctx.snapView()
	s.Heap.ScanPagesAt(lo, hi, snap, tid, &ctx.IO, skip, func(rows []types.Row, _ *storage.PageSynopsis) bool {
		if err := ctx.checkpoint(op); err != nil {
			runErr = err
			return false
		}
		for _, row := range rows {
			ok, err := evalFilters(s.Filter, row)
			if err != nil {
				runErr = err
				return false
			}
			if !ok {
				continue
			}
			if !emit(row) {
				return false
			}
		}
		return true
	})
	return runErr
}

// Run implements Operator.
func (s *ParallelScan) Run(ctx *Ctx, emit func(types.Row) bool) error {
	parts := s.Partitions()
	if parts <= 1 {
		return s.RunPartition(0, ctx, emit)
	}
	return runPartitioned("ParallelScan "+s.Table, parts, s.RunPartition, ctx, emit)
}

// BatchCapable implements BatchOperator. Multi-partition scans interleave
// emits from a worker pool, which has no batched equivalent — partition
// plumbing stays row-based — so only the degenerate single-partition scan
// streams batches.
func (s *ParallelScan) BatchCapable() bool { return s.Partitions() <= 1 }

// RunBatch implements BatchOperator for the single-partition case,
// vectorizing exactly like SeqScan.
func (s *ParallelScan) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	if s.Partitions() > 1 {
		one := make([]types.Row, 1)
		var b vec.Batch
		return s.Run(ctx, func(row types.Row) bool {
			one[0] = row
			b.Reset(one)
			return emit(&b)
		})
	}
	op := "ParallelScan " + s.Table
	return scanPageLoop(op, s.Heap, 0, int(s.Heap.PageCount()), s.Filter, s.Prune, ctx, emit)
}

// Describe implements Operator.
func (s *ParallelScan) Describe() string {
	d := fmt.Sprintf("ParallelScan %s workers=%d", s.Table, s.Workers)
	if len(s.Filter) > 0 {
		d += " filter=" + expr.And(s.Filter...).String()
	}
	return d
}

// Inputs implements Operator.
func (s *ParallelScan) Inputs() []Operator { return nil }

// --- partition pass-through for Filter and Project ---

// Partitions implements PartitionedOperator: a Filter passes its input's
// partitioning through so predicate evaluation runs on partition workers.
func (f *Filter) Partitions() int {
	if p, ok := f.Input.(PartitionedOperator); ok {
		return p.Partitions()
	}
	return 1
}

// RunPartition implements PartitionedOperator.
func (f *Filter) RunPartition(part int, ctx *Ctx, emit func(types.Row) bool) error {
	p, ok := f.Input.(PartitionedOperator)
	if !ok {
		return f.Run(ctx, emit)
	}
	var inner error
	err := p.RunPartition(part, ctx, func(row types.Row) bool {
		ok, err := evalFilters(f.Conds, row)
		if err != nil {
			inner = err
			return false
		}
		if !ok {
			return true
		}
		return emit(row)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Partitions implements PartitionedOperator for Project, mirroring Filter.
func (p *Project) Partitions() int {
	if in, ok := p.Input.(PartitionedOperator); ok {
		return in.Partitions()
	}
	return 1
}

// RunPartition implements PartitionedOperator.
func (p *Project) RunPartition(part int, ctx *Ctx, emit func(types.Row) bool) error {
	in, ok := p.Input.(PartitionedOperator)
	if !ok {
		return p.Run(ctx, emit)
	}
	var inner error
	err := in.RunPartition(part, ctx, func(row types.Row) bool {
		out := make(types.Row, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(row)
			if err != nil {
				inner = err
				return false
			}
			out[i] = v
		}
		return emit(out)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Serialize returns an equivalent operator tree with parallel leaves
// demoted to serial ones. Nested-loop join re-runs its inner side once per
// outer row; a ParallelScan there would spawn a worker pool per outer row,
// so the optimizer serializes NLJ subtrees.
func Serialize(op Operator) Operator {
	switch t := op.(type) {
	case *ParallelScan:
		return &SeqScan{Table: t.Table, Heap: t.Heap, Filter: t.Filter, Prune: t.Prune}
	case *Filter:
		return &Filter{Input: Serialize(t.Input), Conds: t.Conds}
	case *Project:
		return &Project{Input: Serialize(t.Input), Exprs: t.Exprs}
	default:
		return op
	}
}

// --- partitioned hash join ---

// PartitionedHashJoin is a HashJoin that builds and probes in parallel.
// The build side is hashed into Workers shard maps: when Left is
// partitioned, each build worker routes its partition's rows into
// per-worker shard buckets that are then merged shard-wise (in partition
// order, preserving the serial per-key row order); otherwise the build is
// routed serially. The probe side, when partitioned, probes the read-only
// shard maps from a worker pool. Counter totals match serial HashJoin
// exactly: build rows charge their scan costs once and every non-NULL
// probe row charges one hash probe.
type PartitionedHashJoin struct {
	Left, Right        Operator
	LeftKeys, RightKey []expr.Expr
	Residual           []expr.Expr
	Workers            int
}

type keyedRow struct {
	key string
	row types.Row
}

// shardOf maps a hash key to a shard with FNV-1a.
func shardOf(key string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// Run implements Operator.
func (j *PartitionedHashJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	shards := j.Workers
	if shards < 2 {
		shards = 2
	}
	build := make([]map[string][]types.Row, shards)
	for i := range build {
		build[i] = map[string][]types.Row{}
	}
	if err := j.runBuild(ctx, build, shards); err != nil {
		return err
	}
	probeOne := func(ctx *Ctx, row types.Row, emit func(types.Row) bool) (bool, error) {
		ctx.AddProbes(1)
		key, null, err := hashKey(j.RightKey, row)
		if err != nil {
			return false, err
		}
		if null {
			return true, nil
		}
		for _, l := range build[shardOf(key, shards)][key] {
			joined := l.Concat(row)
			ok, err := evalFilters(j.Residual, joined)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			if !emit(joined) {
				return false, nil
			}
		}
		return true, nil
	}
	if rp, ok := j.Right.(PartitionedOperator); ok && rp.Partitions() > 1 && j.Workers > 1 {
		return runPartitioned("PartitionedHashJoin probe", rp.Partitions(), func(part int, wctx *Ctx, wemit func(types.Row) bool) error {
			var inner error
			err := rp.RunPartition(part, wctx, func(row types.Row) bool {
				cont, err := probeOne(wctx, row, wemit)
				if err != nil {
					inner = err
					return false
				}
				return cont
			})
			if inner != nil {
				return inner
			}
			return err
		}, ctx, emit)
	}
	var inner error
	err := j.Right.Run(ctx, func(row types.Row) bool {
		cont, err := probeOne(ctx, row, emit)
		if err != nil {
			inner = err
			return false
		}
		return cont
	})
	if inner != nil {
		return inner
	}
	return err
}

// runBuild fills the shard maps from the left input, in parallel when the
// input is partitioned.
func (j *PartitionedHashJoin) runBuild(ctx *Ctx, build []map[string][]types.Row, shards int) error {
	const op = "PartitionedHashJoin build"
	lp, ok := j.Left.(PartitionedOperator)
	if !ok || lp.Partitions() <= 1 || j.Workers <= 1 {
		var inner error
		err := j.Left.Run(ctx, func(row types.Row) bool {
			key, null, err := hashKey(j.LeftKeys, row)
			if err != nil {
				inner = err
				return false
			}
			if null {
				return true
			}
			if err := ctx.Reserve(op, row.MemSize()); err != nil {
				inner = err
				return false
			}
			m := build[shardOf(key, shards)]
			m[key] = append(m[key], row.Clone())
			return true
		})
		if inner != nil {
			return inner
		}
		return err
	}
	parts := lp.Partitions()
	partials := make([][][]keyedRow, parts) // [partition][shard][]rows
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			wctx := ctx.Child()
			defer ctx.Merge(wctx)
			local := make([][]keyedRow, shards)
			errs[part] = func() (err error) {
				defer wctx.recoverPanic(op, &err)
				var inner error
				err = lp.RunPartition(part, wctx, func(row types.Row) bool {
					key, null, err := hashKey(j.LeftKeys, row)
					if err != nil {
						inner = err
						return false
					}
					if null {
						return true
					}
					if err := wctx.Reserve(op, row.MemSize()); err != nil {
						inner = err
						return false
					}
					s := shardOf(key, shards)
					local[s] = append(local[s], keyedRow{key: key, row: row.Clone()})
					return true
				})
				if inner != nil {
					return inner
				}
				return err
			}()
			partials[part] = local
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Merge shard-wise in ascending partition order: partitions are ordered
	// by storage position, so per-key row order matches a serial build.
	for s := 0; s < shards; s++ {
		m := build[s]
		for p := 0; p < parts; p++ {
			for _, kr := range partials[p][s] {
				m[kr.key] = append(m[kr.key], kr.row)
			}
		}
	}
	return nil
}

// Describe implements Operator.
func (j *PartitionedHashJoin) Describe() string {
	var pairs []string
	for i := range j.LeftKeys {
		pairs = append(pairs, fmt.Sprintf("%s=%s", j.LeftKeys[i], j.RightKey[i]))
	}
	d := fmt.Sprintf("PartitionedHashJoin on %s workers=%d", joinComma(pairs), j.Workers)
	if len(j.Residual) > 0 {
		d += " residual=" + expr.And(j.Residual...).String()
	}
	return d
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// Inputs implements Operator.
func (j *PartitionedHashJoin) Inputs() []Operator { return []Operator{j.Left, j.Right} }

// --- parallel aggregation ---

// ParallelHashAggregate computes per-partition partial aggregates on a
// worker pool and merges them (partial aggregation + merge). Each worker
// folds its partition with the same per-row charging as HashAggregate and
// the merge phase charges nothing, so counter totals and results match a
// serial HashAggregate exactly; output stays sorted by group key. When the
// input is not partitioned it degrades to the serial operator.
type ParallelHashAggregate struct {
	Input     Operator
	GroupBy   []expr.Expr
	Aggs      []plan.AggSpec
	Redundant []bool
	Workers   int
}

func (h *ParallelHashAggregate) serial() *HashAggregate {
	return &HashAggregate{Input: h.Input, GroupBy: h.GroupBy, Aggs: h.Aggs, Redundant: h.Redundant}
}

// Run implements Operator.
func (h *ParallelHashAggregate) Run(ctx *Ctx, emit func(types.Row) bool) error {
	s := h.serial()
	pin, ok := h.Input.(PartitionedOperator)
	if !ok || pin.Partitions() <= 1 || h.Workers <= 1 {
		return s.Run(ctx, emit)
	}
	parts := pin.Partitions()
	tables := make([]*aggTable, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			wctx := ctx.Child()
			defer ctx.Merge(wctx)
			t := newAggTable()
			errs[part] = func() (err error) {
				defer wctx.recoverPanic("ParallelHashAggregate", &err)
				var inner error
				err = pin.RunPartition(part, wctx, func(row types.Row) bool {
					if err := s.foldRow(wctx, row, t); err != nil {
						inner = err
						return false
					}
					return true
				})
				if inner != nil {
					return inner
				}
				return err
			}()
			tables[part] = t
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Merge partials in ascending partition order so the group key row
	// (which carries redundant FD-determined columns from the group's first
	// row) is taken from the earliest partition, matching serial scan order.
	merged := tables[0]
	for p := 1; p < parts; p++ {
		for _, k := range tables[p].order {
			other := tables[p].groups[k]
			grp, ok := merged.groups[k]
			if !ok {
				merged.groups[k] = other
				merged.order = append(merged.order, k)
				continue
			}
			for i := range grp.accs {
				grp.accs[i].merge(other.accs[i])
			}
		}
	}
	return s.emitGroups(merged, emit)
}

// BatchCapable implements BatchOperator: like HashAggregate, the merged
// result set always leaves as one owned batch.
func (h *ParallelHashAggregate) BatchCapable() bool { return true }

// RunBatch implements BatchOperator. Partition folding stays row-based (the
// partial tables are merged exactly as in Run); only the emission is
// batched. Group rows from emitGroups are freshly allocated, so the batch
// is owned.
func (h *ParallelHashAggregate) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	var rows []types.Row
	if err := h.Run(ctx, func(r types.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	var ob vec.Batch
	ob.Reset(rows)
	ob.Owned = true
	emit(&ob)
	return nil
}

// Describe implements Operator.
func (h *ParallelHashAggregate) Describe() string {
	return fmt.Sprintf("Parallel%s workers=%d", h.serial().Describe(), h.Workers)
}

// Inputs implements Operator.
func (h *ParallelHashAggregate) Inputs() []Operator { return []Operator{h.Input} }
