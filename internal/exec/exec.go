// Package exec implements softdb's physical operators. Execution is
// push-based: each operator's Run drives rows into an emit callback, which
// returns false to stop early (LIMIT). Operators are re-runnable, which
// nested-loop join relies on, and every data touch is charged to the
// query's Ctx so benchmarks can report pages and rows exactly as the
// paper's cost arguments do.
//
// Emit contract: Run always invokes emit from a single goroutine at a time,
// even for the parallel operators in parallel.go, so downstream operators
// need no synchronization of their own. Counter updates, in contrast, go
// through the atomic Ctx/storage.Counters methods because parallel workers
// charge a shared Ctx concurrently.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"softdb/internal/btree"
	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// Ctx carries per-query runtime counters. The fields are plain int64 —
// not atomic.Int64, so a quiesced Ctx stays freely copyable into results —
// but all updates must go through the Add* methods, which use atomic adds.
type Ctx struct {
	IO          storage.Counters
	Comparisons int64 // sort and join comparisons
	HashProbes  int64

	// Skips, when set, attributes each pruned page to the prune predicate
	// that proved the skip; the engine flushes it into the per-constraint
	// economy ledger after the query. The pointer is shared down the
	// Child() tree, so worker totals need no merge step.
	Skips *SkipRecorder

	// life holds the query's shared lifecycle (cancellation, memory
	// budget, panic hook, fault injection); nil for legacy callers, which
	// keeps every checkpoint a single pointer test. All lifecycle state
	// lives behind this pointer so a quiesced Ctx remains copyable.
	life *lifecycle
}

// AddComparisons atomically charges n comparisons.
func (c *Ctx) AddComparisons(n int64) { atomic.AddInt64(&c.Comparisons, n) }

// AddProbes atomically charges n hash probes.
func (c *Ctx) AddProbes(n int64) { atomic.AddInt64(&c.HashProbes, n) }

// Merge atomically accumulates a worker's private counters into c. Parallel
// operators give each worker its own Ctx and merge on completion so the
// parent totals are exact without per-touch contention on shared cache
// lines.
func (c *Ctx) Merge(w *Ctx) {
	c.IO.Add(w.IO.Load())
	c.AddComparisons(atomic.LoadInt64(&w.Comparisons))
	c.AddProbes(atomic.LoadInt64(&w.HashProbes))
}

// String renders the counters.
func (c *Ctx) String() string {
	io := c.IO.Load()
	return fmt.Sprintf("pages=%d rows=%d cmp=%d probes=%d",
		io.PagesRead, io.RowsRead,
		atomic.LoadInt64(&c.Comparisons), atomic.LoadInt64(&c.HashProbes))
}

// Operator is a runnable physical plan node.
type Operator interface {
	// Run pushes output rows into emit until exhausted or emit returns
	// false.
	Run(ctx *Ctx, emit func(types.Row) bool) error
	// Describe renders a one-line summary.
	Describe() string
	// Inputs returns child operators.
	Inputs() []Operator
}

// Collect runs op and gathers all output rows.
func Collect(op Operator, ctx *Ctx) ([]types.Row, error) {
	if ctx == nil {
		ctx = &Ctx{}
	}
	var out []types.Row
	err := op.Run(ctx, func(r types.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out, err
}

// Format renders the operator tree.
func Format(op Operator) string {
	var b strings.Builder
	var walk func(Operator, int)
	walk = func(o Operator, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(o.Describe())
		b.WriteByte('\n')
		for _, c := range o.Inputs() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// --- scans ---

// SeqScan reads every live row of a heap, applying residual filters. The
// inner loop is page-batched: each heap page's live rows arrive as one
// borrowed batch, are filtered in place, and leave as one batch (Run adapts
// back to row-at-a-time for parents that need it). Prune predicates let the
// scan skip pages whose synopsis proves no qualifying row, charging
// PagesSkipped instead of a read.
type SeqScan struct {
	Table  string
	Heap   *storage.Heap
	Filter []expr.Expr
	Prune  []plan.PrunePred
}

// Run implements Operator.
func (s *SeqScan) Run(ctx *Ctx, emit func(types.Row) bool) error {
	return s.RunBatch(ctx, func(rows []types.Row) bool {
		for _, r := range rows {
			if !emit(r) {
				return false
			}
		}
		return true
	})
}

// RunBatch implements BatchOperator.
func (s *SeqScan) RunBatch(ctx *Ctx, emit func(rows []types.Row) bool) error {
	var runErr error
	skip := makeSkipper(s.Prune, ctx.Skips)
	var pass []types.Row
	op := "SeqScan " + s.Table // precomputed so the per-page checkpoint allocates nothing
	s.Heap.ScanPages(0, int(s.Heap.PageCount()), &ctx.IO, skip, func(rows []types.Row) bool {
		if err := ctx.checkpoint(op); err != nil {
			runErr = err
			return false
		}
		if len(s.Filter) == 0 {
			return emit(rows)
		}
		pass = pass[:0]
		for _, row := range rows {
			ok, err := evalFilters(s.Filter, row)
			if err != nil {
				runErr = err
				return false
			}
			if ok {
				pass = append(pass, row)
			}
		}
		if len(pass) == 0 {
			return true
		}
		return emit(pass)
	})
	return runErr
}

// Describe implements Operator.
func (s *SeqScan) Describe() string {
	d := "SeqScan " + s.Table
	if len(s.Filter) > 0 {
		d += " filter=" + expr.And(s.Filter...).String()
	}
	for _, pp := range s.Prune {
		// Filter-derived predicates restate the filter; only derived
		// (constraint- or hole-sourced) ones add information to EXPLAIN.
		if pp.Source != "filter" {
			d += " prune=" + pp.Describe(s.Heap.Def().Columns[pp.Col].Name)
		}
	}
	return d
}

// Inputs implements Operator.
func (s *SeqScan) Inputs() []Operator { return nil }

// IndexScan reads rows via a B+tree index range, fetching each matching row
// from the heap and applying residual filters.
type IndexScan struct {
	Table  string
	Heap   *storage.Heap
	Index  *catalog.Index
	Lo, Hi btree.Bound
	Filter []expr.Expr
}

// Run implements Operator.
func (s *IndexScan) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var runErr error
	// Heap pages are charged once per distinct page touched during this
	// scan, modeling a buffer pool holding the scan's working set; index
	// page touches are charged by the tree walk itself.
	seenPages := map[int32]bool{}
	op := "IndexScan " + s.Table
	var entries int64
	s.Index.Tree.AscendRange(s.Lo, s.Hi, &ctx.IO, func(_ types.Row, rid storage.RowID) bool {
		// Index entries have no page batching, so observe cancellation
		// every checkpointRows entries instead of per page.
		if entries++; entries%checkpointRows == 0 {
			if err := ctx.checkpoint(op); err != nil {
				runErr = err
				return false
			}
		}
		if !seenPages[rid.Page] {
			seenPages[rid.Page] = true
			ctx.IO.AddPages(1)
		}
		row, ok := s.Heap.Get(rid)
		if !ok {
			return true // row deleted since index entry; skip
		}
		ctx.IO.AddRows(1)
		pass, err := evalFilters(s.Filter, row)
		if err != nil {
			runErr = err
			return false
		}
		if !pass {
			return true
		}
		return emit(row)
	})
	return runErr
}

// Describe implements Operator.
func (s *IndexScan) Describe() string {
	rng := describeBounds(s.Lo, s.Hi)
	d := fmt.Sprintf("IndexScan %s using %s %s", s.Table, s.Index.Name, rng)
	if len(s.Filter) > 0 {
		d += " filter=" + expr.And(s.Filter...).String()
	}
	return d
}

func describeBounds(lo, hi btree.Bound) string {
	l, h := "(-inf", "+inf)"
	if lo.Key != nil {
		br := "("
		if lo.Inclusive {
			br = "["
		}
		l = br + lo.Key.String()
	}
	if hi.Key != nil {
		br := ")"
		if hi.Inclusive {
			br = "]"
		}
		h = hi.Key.String() + br
	}
	return l + ", " + h
}

// Inputs implements Operator.
func (s *IndexScan) Inputs() []Operator { return nil }

// IndexMinMax answers a scalar MIN/MAX-only aggregation by reading the
// ends of indexes instead of scanning the table (the flavor of runtime
// shortcut §4.2 describes for Sybase's min/max soft constraints; an index
// stays exact under deletes where a stored min/max constraint would not).
type IndexMinMax struct {
	Table string
	Specs []MinMaxSpec
}

// MinMaxSpec is one MIN or MAX output column.
type MinMaxSpec struct {
	Index *catalog.Index
	Max   bool
}

// Run implements Operator.
func (m *IndexMinMax) Run(ctx *Ctx, emit func(types.Row) bool) error {
	out := make(types.Row, len(m.Specs))
	for i, sp := range m.Specs {
		// One root-to-leaf descent per lookup.
		ctx.IO.AddPages(int64(sp.Index.Tree.Height()))
		var key types.Row
		if sp.Max {
			key = sp.Index.Tree.Max()
		} else {
			key = sp.Index.Tree.Min()
		}
		if key == nil {
			out[i] = types.Null
		} else {
			out[i] = key[0]
			ctx.IO.AddRows(1)
		}
	}
	emit(out)
	return nil
}

// Describe implements Operator.
func (m *IndexMinMax) Describe() string {
	var parts []string
	for _, sp := range m.Specs {
		fn := "MIN"
		if sp.Max {
			fn = "MAX"
		}
		parts = append(parts, fmt.Sprintf("%s via %s", fn, sp.Index.Name))
	}
	return "IndexMinMax " + m.Table + " [" + strings.Join(parts, ", ") + "]"
}

// Inputs implements Operator.
func (m *IndexMinMax) Inputs() []Operator { return nil }

// Values emits a fixed set of rows (tests, EXPLAIN output, empty results).
type Values struct {
	Rows []types.Row
	Desc string
}

// Run implements Operator.
func (v *Values) Run(_ *Ctx, emit func(types.Row) bool) error {
	for _, r := range v.Rows {
		if !emit(r) {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (v *Values) Describe() string {
	if v.Desc != "" {
		return v.Desc
	}
	return fmt.Sprintf("Values [%d rows]", len(v.Rows))
}

// Inputs implements Operator.
func (v *Values) Inputs() []Operator { return nil }

// --- row-at-a-time operators ---

// Filter drops rows failing its predicates.
type Filter struct {
	Input Operator
	Conds []expr.Expr
}

// Run implements Operator.
func (f *Filter) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var inner error
	err := f.Input.Run(ctx, func(row types.Row) bool {
		ok, err := evalFilters(f.Conds, row)
		if err != nil {
			inner = err
			return false
		}
		if !ok {
			return true
		}
		return emit(row)
	})
	if inner != nil {
		return inner
	}
	return err
}

// RunBatch implements BatchOperator: batches from a batch-capable input are
// filtered in place and re-emitted compacted, preserving page-granular
// emission above the scan.
func (f *Filter) RunBatch(ctx *Ctx, emit func(rows []types.Row) bool) error {
	var inner error
	var pass []types.Row
	err := RunBatched(f.Input, ctx, func(rows []types.Row) bool {
		pass = pass[:0]
		for _, row := range rows {
			ok, err := evalFilters(f.Conds, row)
			if err != nil {
				inner = err
				return false
			}
			if ok {
				pass = append(pass, row)
			}
		}
		if len(pass) == 0 {
			return true
		}
		return emit(pass)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (f *Filter) Describe() string { return "Filter " + expr.And(f.Conds...).String() }

// Inputs implements Operator.
func (f *Filter) Inputs() []Operator { return []Operator{f.Input} }

// Project computes output expressions.
type Project struct {
	Input Operator
	Exprs []expr.Expr
}

// Run implements Operator.
func (p *Project) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var inner error
	err := p.Input.Run(ctx, func(row types.Row) bool {
		out := make(types.Row, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(row)
			if err != nil {
				inner = err
				return false
			}
			out[i] = v
		}
		return emit(out)
	})
	if inner != nil {
		return inner
	}
	return err
}

// RunBatch implements BatchOperator. Output rows are freshly allocated (as
// in Run) but leave in the input's batch granularity.
func (p *Project) RunBatch(ctx *Ctx, emit func(rows []types.Row) bool) error {
	var inner error
	var out []types.Row
	err := RunBatched(p.Input, ctx, func(rows []types.Row) bool {
		out = out[:0]
		for _, row := range rows {
			o := make(types.Row, len(p.Exprs))
			for i, e := range p.Exprs {
				v, err := e.Eval(row)
				if err != nil {
					inner = err
					return false
				}
				o[i] = v
			}
			out = append(out, o)
		}
		return emit(out)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (p *Project) Describe() string {
	var parts []string
	for _, e := range p.Exprs {
		parts = append(parts, e.String())
	}
	return "Project " + strings.Join(parts, ", ")
}

// Inputs implements Operator.
func (p *Project) Inputs() []Operator { return []Operator{p.Input} }

// Limit emits the first N rows.
type Limit struct {
	Input Operator
	N     int64
}

// Run implements Operator.
func (l *Limit) Run(ctx *Ctx, emit func(types.Row) bool) error {
	if l.N <= 0 {
		return nil
	}
	var count int64
	return l.Input.Run(ctx, func(row types.Row) bool {
		count++
		if !emit(row) {
			return false
		}
		return count < l.N
	})
}

// RunBatch implements BatchOperator, truncating the final batch at the
// limit boundary.
func (l *Limit) RunBatch(ctx *Ctx, emit func(rows []types.Row) bool) error {
	if l.N <= 0 {
		return nil
	}
	var count int64
	return RunBatched(l.Input, ctx, func(rows []types.Row) bool {
		if count+int64(len(rows)) > l.N {
			rows = rows[:l.N-count]
		}
		count += int64(len(rows))
		if !emit(rows) {
			return false
		}
		return count < l.N
	})
}

// Describe implements Operator.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// Inputs implements Operator.
func (l *Limit) Inputs() []Operator { return []Operator{l.Input} }

// Distinct suppresses duplicate rows.
type Distinct struct{ Input Operator }

// Run implements Operator.
func (d *Distinct) Run(ctx *Ctx, emit func(types.Row) bool) error {
	seen := map[string]bool{}
	var inner error
	err := d.Input.Run(ctx, func(row types.Row) bool {
		k := row.Key()
		if seen[k] {
			return true
		}
		// Each retained key is buffered state; charge it to the budget.
		if err := ctx.Reserve("Distinct", int64(len(k))); err != nil {
			inner = err
			return false
		}
		seen[k] = true
		return emit(row)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (d *Distinct) Describe() string { return "Distinct" }

// Inputs implements Operator.
func (d *Distinct) Inputs() []Operator { return []Operator{d.Input} }

// UnionAll concatenates its inputs.
type UnionAll struct {
	Arms   []Operator
	Pruned []string
}

// Run implements Operator.
func (u *UnionAll) Run(ctx *Ctx, emit func(types.Row) bool) error {
	stopped := false
	for _, arm := range u.Arms {
		err := arm.Run(ctx, func(row types.Row) bool {
			if !emit(row) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (u *UnionAll) Describe() string {
	d := fmt.Sprintf("UnionAll [%d arms]", len(u.Arms))
	if len(u.Pruned) > 0 {
		d += fmt.Sprintf(" pruned=%d (%s)", len(u.Pruned), strings.Join(u.Pruned, ", "))
	}
	return d
}

// Inputs implements Operator.
func (u *UnionAll) Inputs() []Operator { return u.Arms }

// Sort materializes and orders its input.
type Sort struct {
	Input Operator
	Keys  []plan.SortKey
}

// Run implements Operator.
func (s *Sort) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var rows []types.Row
	var inner error
	err := s.Input.Run(ctx, func(row types.Row) bool {
		if err := ctx.Reserve("Sort", row.MemSize()); err != nil {
			inner = err
			return false
		}
		if int64(len(rows))%checkpointRows == 0 {
			if err := ctx.checkpoint("Sort"); err != nil {
				inner = err
				return false
			}
		}
		rows = append(rows, row.Clone())
		return true
	})
	if inner != nil {
		return inner
	}
	if err != nil {
		return err
	}
	// Comparisons counts column comparisons, so shorter key lists (the
	// FD-based sort simplification) show up directly.
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range s.Keys {
			ctx.AddComparisons(1)
			c := rows[i][k.Ordinal].Compare(rows[j][k.Ordinal])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		if !emit(r) {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (s *Sort) Describe() string {
	var parts []string
	for _, k := range s.Keys {
		p := fmt.Sprintf("#%d", k.Ordinal)
		if k.Desc {
			p += " DESC"
		}
		parts = append(parts, p)
	}
	return "Sort by " + strings.Join(parts, ", ")
}

// Inputs implements Operator.
func (s *Sort) Inputs() []Operator { return []Operator{s.Input} }

func evalFilters(conds []expr.Expr, row types.Row) (bool, error) {
	for _, c := range conds {
		ok, err := expr.EvalBool(c, row)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}
