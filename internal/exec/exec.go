// Package exec implements softdb's physical operators. Execution is
// push-based: each operator's Run drives rows into an emit callback, which
// returns false to stop early (LIMIT). Operators are re-runnable, which
// nested-loop join relies on, and every data touch is charged to the
// query's Ctx so benchmarks can report pages and rows exactly as the
// paper's cost arguments do.
//
// Emit contract: Run always invokes emit from a single goroutine at a time,
// even for the parallel operators in parallel.go, so downstream operators
// need no synchronization of their own. Counter updates, in contrast, go
// through the atomic Ctx/storage.Counters methods because parallel workers
// charge a shared Ctx concurrently.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"softdb/internal/btree"
	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/vec"
)

// Ctx carries per-query runtime counters. The fields are plain int64 —
// not atomic.Int64, so a quiesced Ctx stays freely copyable into results —
// but all updates must go through the Add* methods, which use atomic adds.
type Ctx struct {
	IO          storage.Counters
	Comparisons int64 // sort and join comparisons
	HashProbes  int64
	// ShortCircuits counts rows that skipped per-row filter evaluation
	// because their page's synopsis proved every filter stage TRUE — the
	// dual of a page skip (which avoids the read; a short-circuit avoids
	// the predicate work on rows that must still be read and emitted).
	ShortCircuits int64

	// Skips, when set, attributes each pruned page to the prune predicate
	// that proved the skip; the engine flushes it into the per-constraint
	// economy ledger after the query. The pointer is shared down the
	// Child() tree, so worker totals need no merge step.
	Skips *SkipRecorder

	// Shorts, when set, attributes short-circuited rows to the prune
	// predicate source whose characterization proved the page
	// all-qualifying; shared down the Child() tree like Skips.
	Shorts *SkipRecorder

	// Snap and TID fix the query's MVCC view: every scan reads the versions
	// visible at snapshot Snap to transaction TID. Snap 0 means the latest
	// committed state. Set once before the query runs and copied down the
	// Child() tree; never mutated during execution.
	Snap int64
	TID  int64

	// life holds the query's shared lifecycle (cancellation, memory
	// budget, panic hook, fault injection); nil for legacy callers, which
	// keeps every checkpoint a single pointer test. All lifecycle state
	// lives behind this pointer so a quiesced Ctx remains copyable.
	life *lifecycle
}

// AddComparisons atomically charges n comparisons.
func (c *Ctx) AddComparisons(n int64) { atomic.AddInt64(&c.Comparisons, n) }

// AddProbes atomically charges n hash probes.
func (c *Ctx) AddProbes(n int64) { atomic.AddInt64(&c.HashProbes, n) }

// AddShortCircuits atomically charges n filter short-circuited rows.
func (c *Ctx) AddShortCircuits(n int64) { atomic.AddInt64(&c.ShortCircuits, n) }

// Merge atomically accumulates a worker's private counters into c. Parallel
// operators give each worker its own Ctx and merge on completion so the
// parent totals are exact without per-touch contention on shared cache
// lines.
func (c *Ctx) Merge(w *Ctx) {
	c.IO.Add(w.IO.Load())
	c.AddComparisons(atomic.LoadInt64(&w.Comparisons))
	c.AddProbes(atomic.LoadInt64(&w.HashProbes))
	c.AddShortCircuits(atomic.LoadInt64(&w.ShortCircuits))
}

// snapView resolves the Ctx's snapshot fields into the stamps storage
// expects, mapping the zero Snap to "latest committed".
func (c *Ctx) snapView() (snap, tid int64) {
	if c.Snap == 0 {
		return storage.SnapLatest, c.TID
	}
	return c.Snap, c.TID
}

// String renders the counters.
func (c *Ctx) String() string {
	io := c.IO.Load()
	return fmt.Sprintf("pages=%d rows=%d cmp=%d probes=%d",
		io.PagesRead, io.RowsRead,
		atomic.LoadInt64(&c.Comparisons), atomic.LoadInt64(&c.HashProbes))
}

// Operator is a runnable physical plan node.
type Operator interface {
	// Run pushes output rows into emit until exhausted or emit returns
	// false.
	Run(ctx *Ctx, emit func(types.Row) bool) error
	// Describe renders a one-line summary.
	Describe() string
	// Inputs returns child operators.
	Inputs() []Operator
}

// Collect runs op and gathers all output rows.
func Collect(op Operator, ctx *Ctx) ([]types.Row, error) {
	if ctx == nil {
		ctx = &Ctx{}
	}
	var out []types.Row
	err := op.Run(ctx, func(r types.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out, err
}

// Format renders the operator tree.
func Format(op Operator) string {
	var b strings.Builder
	var walk func(Operator, int)
	walk = func(o Operator, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(o.Describe())
		b.WriteByte('\n')
		for _, c := range o.Inputs() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// --- scans ---

// SeqScan reads every live row of a heap, applying residual filters. Run is
// the row-at-a-time reference path (per-row expression tree-walk); RunBatch
// is the vectorized path: each heap page's live rows leave as one borrowed
// columnar batch filtered through a compiled predicate program, with
// whole-page synopsis short-circuits. Prune predicates let both paths skip
// pages whose synopsis proves no qualifying row, charging PagesSkipped
// instead of a read.
type SeqScan struct {
	Table  string
	Heap   *storage.Heap
	Filter []expr.Expr
	Prune  []plan.PrunePred
}

// Run implements Operator: the row-at-a-time path that the vectorized
// kernels are differentially tested against (and the -no-batch fallback).
func (s *SeqScan) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var runErr error
	skip := makeSkipper(s.Prune, ctx.Skips)
	op := "SeqScan " + s.Table // precomputed so the per-page checkpoint allocates nothing
	snap, tid := ctx.snapView()
	s.Heap.ScanPagesAt(0, int(s.Heap.PageCount()), snap, tid, &ctx.IO, skip, func(rows []types.Row, _ *storage.PageSynopsis) bool {
		if err := ctx.checkpoint(op); err != nil {
			runErr = err
			return false
		}
		for _, row := range rows {
			ok, err := evalFilters(s.Filter, row)
			if err != nil {
				runErr = err
				return false
			}
			if !ok {
				continue
			}
			if !emit(row) {
				return false
			}
		}
		return true
	})
	return runErr
}

// BatchCapable implements BatchOperator.
func (s *SeqScan) BatchCapable() bool { return true }

// RunBatch implements BatchOperator.
func (s *SeqScan) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	op := "SeqScan " + s.Table
	return scanPageLoop(op, s.Heap, 0, int(s.Heap.PageCount()), s.Filter, s.Prune, ctx, emit)
}

// Describe implements Operator.
func (s *SeqScan) Describe() string {
	d := "SeqScan " + s.Table
	if len(s.Filter) > 0 {
		d += " filter=" + expr.And(s.Filter...).String()
	}
	for _, pp := range s.Prune {
		// Filter-derived predicates restate the filter; only derived
		// (constraint- or hole-sourced) ones add information to EXPLAIN.
		if pp.Source != "filter" {
			d += " prune=" + pp.Describe(s.Heap.Def().Columns[pp.Col].Name)
		}
	}
	return d
}

// Inputs implements Operator.
func (s *SeqScan) Inputs() []Operator { return nil }

// IndexScan reads rows via a B+tree index range, fetching each matching row
// from the heap and applying residual filters.
type IndexScan struct {
	Table  string
	Heap   *storage.Heap
	Index  *catalog.Index
	Lo, Hi btree.Bound
	Filter []expr.Expr
}

// indexEntry is one collected (key, rid) pair from a chunked index walk.
type indexEntry struct {
	key types.Row
	rid storage.RowID
}

// indexChunkEntries is how many (key, rid) pairs an index scan collects
// per tree latch acquisition. The tree's read latch is held only while
// collecting; heap fetches, filtering, and emission happen after release,
// so a scan never holds the latch across downstream operators (which could
// deadlock on reader re-entry once a writer queues for the same tree).
const indexChunkEntries = 1024

// collectChunk gathers up to indexChunkEntries pairs from tree in [lo, hi],
// resuming after the entry *after (after.key, after.rid) when resume is
// true. Duplicate-key rids enumerate in RowID order, so (key, rid) is a
// total resume position. It returns the collected chunk and whether the
// range may hold more entries beyond it.
func collectChunk(t *btree.Tree, lo, hi btree.Bound, resume bool, after indexEntry, c *storage.Counters, buf []indexEntry) ([]indexEntry, bool) {
	if resume {
		lo = btree.Bound{Key: after.key, Inclusive: true}
	}
	buf = buf[:0]
	more := false
	t.AscendRange(lo, hi, c, func(key types.Row, rid storage.RowID) bool {
		if resume && key.Compare(after.key) == 0 {
			if rid.Page < after.rid.Page || (rid.Page == after.rid.Page && rid.Slot <= after.rid.Slot) {
				return true // already delivered in the previous chunk
			}
		}
		if len(buf) == indexChunkEntries {
			more = true
			return false
		}
		buf = append(buf, indexEntry{key: key, rid: rid})
		return true
	})
	return buf, more
}

// Run implements Operator. Entries are collected from the tree in chunks
// (latch released between chunks) and each chunk's rows are then fetched
// from the heap under the scan's snapshot: an index entry whose version is
// not visible at the snapshot — deleted, superseded by an update, or
// uncommitted — is skipped, which is also what keeps stale entries (MVCC
// never removes index entries at delete time) harmless.
func (s *IndexScan) Run(ctx *Ctx, emit func(types.Row) bool) error {
	// Heap pages are charged once per distinct page touched during this
	// scan, modeling a buffer pool holding the scan's working set; index
	// page touches are charged by the tree walk itself. lastPage short-cuts
	// the map when consecutive entries land on the same heap page (the
	// common case when the indexed column correlates with insertion order).
	seenPages := map[int32]bool{}
	lastPage := int32(-1)
	op := "IndexScan " + s.Table
	snap, tid := ctx.snapView()
	var entries int64
	var chunk []indexEntry
	var last indexEntry
	resume := false
	for {
		var more bool
		chunk, more = collectChunk(s.Index.Tree, s.Lo, s.Hi, resume, last, &ctx.IO, chunk)
		for i := range chunk {
			e := &chunk[i]
			// Index entries have no page batching, so observe cancellation
			// every checkpointRows entries instead of per page.
			if entries++; entries%checkpointRows == 0 {
				if err := ctx.checkpoint(op); err != nil {
					return err
				}
			}
			rid := e.rid
			if rid.Page != lastPage {
				lastPage = rid.Page
				if !seenPages[rid.Page] {
					seenPages[rid.Page] = true
					ctx.IO.AddPages(1)
				}
			}
			row, ok := s.Heap.GetAt(rid, snap, tid)
			if !ok {
				continue // version not visible at this snapshot; skip
			}
			ctx.IO.AddRows(1)
			pass, err := evalFilters(s.Filter, row)
			if err != nil {
				return err
			}
			if !pass {
				continue
			}
			if !emit(row) {
				return nil
			}
		}
		if !more {
			return nil
		}
		last = chunk[len(chunk)-1]
		last.key = last.key.Clone() // chunk buffer is reused; pin the resume key
		resume = true
	}
}

// BatchCapable implements BatchOperator.
func (s *IndexScan) BatchCapable() bool { return true }

// indexBatchRows is the window size IndexScan.RunBatch accumulates fetched
// heap rows into before emitting. Index entries arrive one at a time, so
// unlike SeqScan there is no natural page granularity; a fixed window keeps
// downstream kernels amortized without holding many heap rows borrowed.
const indexBatchRows = 256

// RunBatch implements BatchOperator: matching heap rows are buffered into
// fixed-size windows and the residual filter runs as a compiled predicate
// program over each window instead of a per-row tree-walk. Page and row
// accounting is identical to Run; as with all batched operators, an early
// stop (LIMIT) has already paid for the whole in-flight window.
func (s *IndexScan) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	var runErr error
	seenPages := map[int32]bool{}
	lastPage := int32(-1)
	op := "IndexScan " + s.Table
	snap, tid := ctx.snapView()
	prog := expr.CompilePredicate(s.Filter)
	pr := progRunner{prog: prog}
	buf := make([]types.Row, 0, indexBatchRows)
	var batch vec.Batch
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		batch.Reset(buf)
		keep := true
		if len(prog.Stages) == 0 {
			keep = emit(&batch)
		} else {
			sel, _, err := pr.run(&batch, nil)
			if err != nil {
				runErr = err
				return false
			}
			if len(sel) > 0 {
				batch.Sel = sel
				keep = emit(&batch)
			}
		}
		buf = buf[:0]
		return keep
	}
	var entries int64
	var chunk []indexEntry
	var last indexEntry
	resume := false
	for {
		var more bool
		chunk, more = collectChunk(s.Index.Tree, s.Lo, s.Hi, resume, last, &ctx.IO, chunk)
		for i := range chunk {
			if entries++; entries%checkpointRows == 0 {
				if err := ctx.checkpoint(op); err != nil {
					return err
				}
			}
			rid := chunk[i].rid
			if rid.Page != lastPage {
				lastPage = rid.Page
				if !seenPages[rid.Page] {
					seenPages[rid.Page] = true
					ctx.IO.AddPages(1)
				}
			}
			row, ok := s.Heap.GetAt(rid, snap, tid)
			if !ok {
				continue // version not visible at this snapshot; skip
			}
			ctx.IO.AddRows(1)
			buf = append(buf, row)
			if len(buf) == indexBatchRows {
				if !flush() {
					return runErr
				}
			}
		}
		if !more {
			break
		}
		last = chunk[len(chunk)-1]
		last.key = last.key.Clone() // chunk buffer is reused; pin the resume key
		resume = true
	}
	if runErr != nil {
		return runErr
	}
	flush()
	return runErr
}

// Describe implements Operator.
func (s *IndexScan) Describe() string {
	rng := describeBounds(s.Lo, s.Hi)
	d := fmt.Sprintf("IndexScan %s using %s %s", s.Table, s.Index.Name, rng)
	if len(s.Filter) > 0 {
		d += " filter=" + expr.And(s.Filter...).String()
	}
	return d
}

func describeBounds(lo, hi btree.Bound) string {
	l, h := "(-inf", "+inf)"
	if lo.Key != nil {
		br := "("
		if lo.Inclusive {
			br = "["
		}
		l = br + lo.Key.String()
	}
	if hi.Key != nil {
		br := ")"
		if hi.Inclusive {
			br = "]"
		}
		h = hi.Key.String() + br
	}
	return l + ", " + h
}

// Inputs implements Operator.
func (s *IndexScan) Inputs() []Operator { return nil }

// IndexMinMax answers a scalar MIN/MAX-only aggregation by reading the
// ends of indexes instead of scanning the table (the flavor of runtime
// shortcut §4.2 describes for Sybase's min/max soft constraints; an index
// stays exact under deletes where a stored min/max constraint would not).
// MVCC keeps index entries for ended versions, so each end-of-index probe
// walks inward until it finds an entry whose heap version is visible at
// the scan's snapshot.
type IndexMinMax struct {
	Table string
	Heap  *storage.Heap
	Specs []MinMaxSpec
}

// MinMaxSpec is one MIN or MAX output column.
type MinMaxSpec struct {
	Index *catalog.Index
	Max   bool
}

// Run implements Operator.
func (m *IndexMinMax) Run(ctx *Ctx, emit func(types.Row) bool) error {
	snap, tid := ctx.snapView()
	out := make(types.Row, len(m.Specs))
	for i, sp := range m.Specs {
		// One root-to-leaf descent per lookup. Walking past entries whose
		// versions are invisible at the snapshot is not charged extra: the
		// cost model keeps the pre-MVCC "one descent" shape, and vacuumed
		// indexes shed the stale entries again.
		ctx.IO.AddPages(int64(sp.Index.Tree.Height()))
		var key types.Row
		visit := func(k types.Row, rid storage.RowID) bool {
			if _, ok := m.Heap.GetAt(rid, snap, tid); !ok {
				return true // stale entry; keep walking inward
			}
			key = k
			return false
		}
		if sp.Max {
			sp.Index.Tree.Descend(nil, visit)
		} else {
			sp.Index.Tree.Ascend(nil, visit)
		}
		if key == nil {
			out[i] = types.Null
		} else {
			out[i] = key[0]
			ctx.IO.AddRows(1)
		}
	}
	emit(out)
	return nil
}

// Describe implements Operator.
func (m *IndexMinMax) Describe() string {
	var parts []string
	for _, sp := range m.Specs {
		fn := "MIN"
		if sp.Max {
			fn = "MAX"
		}
		parts = append(parts, fmt.Sprintf("%s via %s", fn, sp.Index.Name))
	}
	return "IndexMinMax " + m.Table + " [" + strings.Join(parts, ", ") + "]"
}

// Inputs implements Operator.
func (m *IndexMinMax) Inputs() []Operator { return nil }

// Values emits a fixed set of rows (tests, EXPLAIN output, empty results).
type Values struct {
	Rows []types.Row
	Desc string
}

// Run implements Operator.
func (v *Values) Run(_ *Ctx, emit func(types.Row) bool) error {
	for _, r := range v.Rows {
		if !emit(r) {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (v *Values) Describe() string {
	if v.Desc != "" {
		return v.Desc
	}
	return fmt.Sprintf("Values [%d rows]", len(v.Rows))
}

// Inputs implements Operator.
func (v *Values) Inputs() []Operator { return nil }

// --- row-at-a-time operators ---

// Filter drops rows failing its predicates.
type Filter struct {
	Input Operator
	Conds []expr.Expr
}

// Run implements Operator.
func (f *Filter) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var inner error
	err := f.Input.Run(ctx, func(row types.Row) bool {
		ok, err := evalFilters(f.Conds, row)
		if err != nil {
			inner = err
			return false
		}
		if !ok {
			return true
		}
		return emit(row)
	})
	if inner != nil {
		return inner
	}
	return err
}

// BatchCapable implements BatchOperator: batch mode pays off only when the
// input actually streams batches.
func (f *Filter) BatchCapable() bool {
	_, ok := AsBatch(f.Input)
	return ok
}

// RunBatch implements BatchOperator: input batches are filtered by
// shrinking their selection vector through a compiled predicate program —
// no rows move, no per-row tree-walk for the sargable conjuncts.
func (f *Filter) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	prog := expr.CompilePredicate(f.Conds)
	pr := progRunner{prog: prog}
	var inner error
	err := RunBatched(f.Input, ctx, func(b *vec.Batch) bool {
		if len(prog.Stages) == 0 {
			return emit(b)
		}
		sel, _, err := pr.run(b, nil)
		if err != nil {
			inner = err
			return false
		}
		if len(sel) == 0 {
			return true
		}
		b.Sel = sel
		return emit(b)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (f *Filter) Describe() string { return "Filter " + expr.And(f.Conds...).String() }

// Inputs implements Operator.
func (f *Filter) Inputs() []Operator { return []Operator{f.Input} }

// Project computes output expressions.
type Project struct {
	Input Operator
	Exprs []expr.Expr
}

// Run implements Operator.
func (p *Project) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var inner error
	err := p.Input.Run(ctx, func(row types.Row) bool {
		out := make(types.Row, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(row)
			if err != nil {
				inner = err
				return false
			}
			out[i] = v
		}
		return emit(out)
	})
	if inner != nil {
		return inner
	}
	return err
}

// BatchCapable implements BatchOperator.
func (p *Project) BatchCapable() bool {
	_, ok := AsBatch(p.Input)
	return ok
}

// RunBatch implements BatchOperator. Output rows are freshly allocated (as
// in Run) from one datum slab per batch and leave as an owned batch in the
// input's granularity. An all-column projection (the common SELECT list
// after planning) copies datums in a tight loop with no Eval calls.
func (p *Project) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	width := len(p.Exprs)
	cols := make([]*expr.Column, width)
	allCols := true
	for i, e := range p.Exprs {
		if c, ok := e.(*expr.Column); ok && c.Index >= 0 {
			cols[i] = c
		} else {
			allCols = false
		}
	}
	var inner error
	var outRows []types.Row
	var ob vec.Batch
	err := RunBatched(p.Input, ctx, func(b *vec.Batch) bool {
		n := b.Len()
		slab := make([]types.Datum, n*width)
		outRows = outRows[:0]
		for i := 0; i < n; i++ {
			row := b.Row(i)
			o := types.Row(slab[:width:width])
			slab = slab[width:]
			if allCols {
				for j, c := range cols {
					if c.Index >= len(row) {
						_, err := c.Eval(row)
						inner = err
						return false
					}
					o[j] = row[c.Index]
				}
			} else {
				for j, e := range p.Exprs {
					v, err := e.Eval(row)
					if err != nil {
						inner = err
						return false
					}
					o[j] = v
				}
			}
			outRows = append(outRows, o)
		}
		ob.Reset(outRows)
		ob.Owned = true
		return emit(&ob)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (p *Project) Describe() string {
	var parts []string
	for _, e := range p.Exprs {
		parts = append(parts, e.String())
	}
	return "Project " + strings.Join(parts, ", ")
}

// Inputs implements Operator.
func (p *Project) Inputs() []Operator { return []Operator{p.Input} }

// Limit emits the first N rows.
type Limit struct {
	Input Operator
	N     int64
}

// Run implements Operator.
func (l *Limit) Run(ctx *Ctx, emit func(types.Row) bool) error {
	if l.N <= 0 {
		return nil
	}
	var count int64
	return l.Input.Run(ctx, func(row types.Row) bool {
		count++
		if !emit(row) {
			return false
		}
		return count < l.N
	})
}

// BatchCapable implements BatchOperator.
func (l *Limit) BatchCapable() bool {
	_, ok := AsBatch(l.Input)
	return ok
}

// RunBatch implements BatchOperator, truncating the final batch at the
// limit boundary.
func (l *Limit) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	if l.N <= 0 {
		return nil
	}
	var count int64
	return RunBatched(l.Input, ctx, func(b *vec.Batch) bool {
		if rem := l.N - count; int64(b.Len()) > rem {
			b.Truncate(int(rem))
		}
		count += int64(b.Len())
		if !emit(b) {
			return false
		}
		return count < l.N
	})
}

// Describe implements Operator.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// Inputs implements Operator.
func (l *Limit) Inputs() []Operator { return []Operator{l.Input} }

// Distinct suppresses duplicate rows.
type Distinct struct{ Input Operator }

// Run implements Operator.
func (d *Distinct) Run(ctx *Ctx, emit func(types.Row) bool) error {
	seen := map[string]bool{}
	var inner error
	err := d.Input.Run(ctx, func(row types.Row) bool {
		k := row.Key()
		if seen[k] {
			return true
		}
		// Each retained key is buffered state; charge it to the budget.
		if err := ctx.Reserve("Distinct", int64(len(k))); err != nil {
			inner = err
			return false
		}
		seen[k] = true
		return emit(row)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (d *Distinct) Describe() string { return "Distinct" }

// Inputs implements Operator.
func (d *Distinct) Inputs() []Operator { return []Operator{d.Input} }

// UnionAll concatenates its inputs.
type UnionAll struct {
	Arms   []Operator
	Pruned []string
}

// Run implements Operator.
func (u *UnionAll) Run(ctx *Ctx, emit func(types.Row) bool) error {
	stopped := false
	for _, arm := range u.Arms {
		err := arm.Run(ctx, func(row types.Row) bool {
			if !emit(row) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (u *UnionAll) Describe() string {
	d := fmt.Sprintf("UnionAll [%d arms]", len(u.Arms))
	if len(u.Pruned) > 0 {
		d += fmt.Sprintf(" pruned=%d (%s)", len(u.Pruned), strings.Join(u.Pruned, ", "))
	}
	return d
}

// Inputs implements Operator.
func (u *UnionAll) Inputs() []Operator { return u.Arms }

// Sort materializes and orders its input.
type Sort struct {
	Input Operator
	Keys  []plan.SortKey
}

// Run implements Operator.
func (s *Sort) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var rows []types.Row
	var inner error
	err := s.Input.Run(ctx, func(row types.Row) bool {
		if err := ctx.Reserve("Sort", row.MemSize()); err != nil {
			inner = err
			return false
		}
		if int64(len(rows))%checkpointRows == 0 {
			if err := ctx.checkpoint("Sort"); err != nil {
				inner = err
				return false
			}
		}
		rows = append(rows, row.Clone())
		return true
	})
	if inner != nil {
		return inner
	}
	if err != nil {
		return err
	}
	// Comparisons counts column comparisons, so shorter key lists (the
	// FD-based sort simplification) show up directly.
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range s.Keys {
			ctx.AddComparisons(1)
			c := rows[i][k.Ordinal].Compare(rows[j][k.Ordinal])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		if !emit(r) {
			return nil
		}
	}
	return nil
}

// Describe implements Operator.
func (s *Sort) Describe() string {
	var parts []string
	for _, k := range s.Keys {
		p := fmt.Sprintf("#%d", k.Ordinal)
		if k.Desc {
			p += " DESC"
		}
		parts = append(parts, p)
	}
	return "Sort by " + strings.Join(parts, ", ")
}

// Inputs implements Operator.
func (s *Sort) Inputs() []Operator { return []Operator{s.Input} }

func evalFilters(conds []expr.Expr, row types.Row) (bool, error) {
	for _, c := range conds {
		ok, err := expr.EvalBool(c, row)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}
