package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"softdb/internal/fault"
)

// ErrKind classifies a QueryError's terminal state. The values double as
// the state labels traces and EXPLAIN ANALYZE print.
type ErrKind string

const (
	// KindCanceled: the query's context was canceled.
	KindCanceled ErrKind = "canceled"
	// KindTimeout: the query's context deadline expired.
	KindTimeout ErrKind = "timeout"
	// KindMemBudget: the query exceeded its buffered-row memory budget.
	KindMemBudget ErrKind = "oom"
	// KindPanic: a panicking operator (or worker goroutine) was recovered.
	KindPanic ErrKind = "panic"
	// KindError: an ordinary runtime error (type error, injected storage
	// fault, ...).
	KindError ErrKind = "error"
	// KindBusy: the statement was rejected by the network server's load
	// shedder before reaching the engine. Defined here so local and remote
	// callers classify outcomes from one kind space; the engine itself
	// never produces it (admission-gate waits surface as canceled/timeout).
	KindBusy ErrKind = "busy"
	// KindRecovery: crash recovery could not reconstruct committed state —
	// a corrupt snapshot, a torn WAL tail, or replay divergence. Fatal
	// recovery errors abort OpenDurable; a truncated-but-consistent tail is
	// reported non-fatally in RecoveryStats with this kind.
	KindRecovery ErrKind = "recovery"
	// KindConflict: a first-updater-wins write-write conflict — the
	// statement tried to update or delete a row version another transaction
	// already ended (committed after this transaction's snapshot, or still
	// in flight). The losing transaction must roll back and retry.
	KindConflict ErrKind = "conflict"
	// KindWrongShard: a statement inside an open transaction routed to a
	// different shard than the one the transaction is pinned to. Like
	// KindBusy, the engine never produces it; the shard router does, and
	// defining it here keeps local and remote callers in one kind space.
	KindWrongShard ErrKind = "wrong-shard"
	// KindMultiShardTxn: a write (or a statement inside a transaction)
	// that would have to touch more than one shard. The router rejects
	// these rather than faking cross-shard atomicity.
	KindMultiShardTxn ErrKind = "multi-shard-txn"
	// KindShardUnreachable: the router could not reach a shard the
	// statement needs — dial (with backoff) failed or the shard connection
	// broke mid-statement.
	KindShardUnreachable ErrKind = "shard-unreachable"
)

// ErrMemBudget is wrapped by every budget-exceeded QueryError so callers
// can classify with errors.Is.
var ErrMemBudget = errors.New("exec: query memory budget exceeded")

// QueryError is the structured error the query lifecycle produces: every
// cancellation, timeout, budget rejection, and recovered panic surfaces as
// one, carrying the operator span it fired in. One poisoned query degrades
// to a QueryError; it never crashes the process.
type QueryError struct {
	// Op is the operator (Describe() line) or engine boundary the error
	// is attributed to.
	Op string
	// Kind is the terminal state.
	Kind ErrKind
	// Err is the underlying cause.
	Err error
	// Stack is the recovering goroutine's stack for KindPanic (truncated);
	// empty otherwise.
	Stack string
}

// Error implements error.
func (e *QueryError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("query %s in [%s]: %v", e.Kind, e.Op, e.Err)
	}
	return fmt.Sprintf("query %s: %v", e.Kind, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *QueryError) Unwrap() error { return e.Err }

// AsQueryError extracts a *QueryError from an error chain.
func AsQueryError(err error) (*QueryError, bool) {
	var qe *QueryError
	if errors.As(err, &qe) {
		return qe, true
	}
	return nil, false
}

// CancelError builds the QueryError for a fired context, classifying
// deadline expiry as a timeout and everything else as a cancellation.
func CancelError(op string, cause error) *QueryError {
	kind := KindCanceled
	if errors.Is(cause, context.DeadlineExceeded) {
		kind = KindTimeout
	}
	if cause == nil {
		cause = context.Canceled
	}
	return &QueryError{Op: op, Kind: kind, Err: cause}
}

// panicStackLimit bounds the stack captured into a QueryError so a hostile
// deeply-recursive query cannot blow up logs.
const panicStackLimit = 4096

// checkpointRows is how often (in rows) operators without natural page
// granularity — index scans, sorts, materializing joins — observe
// cancellation. Chosen so a canceled query stops within microseconds while
// the steady-state cost stays far below the R1 5% overhead budget.
const checkpointRows = 256

// PanicError converts a recovered panic value into a QueryError.
func PanicError(op string, r any) *QueryError {
	buf := make([]byte, panicStackLimit)
	n := runtime.Stack(buf, false)
	err, ok := r.(error)
	if !ok {
		err = fmt.Errorf("panic: %v", r)
	} else {
		err = fmt.Errorf("panic: %w", err)
	}
	return &QueryError{Op: op, Kind: KindPanic, Err: err, Stack: string(buf[:n])}
}

// lifecycle is the shared, per-query lifecycle state: the cancellation
// signal, the buffered-row memory budget, the panic-recovery hook, and the
// fault injector. Worker Ctxs created with Child share their parent's
// lifecycle, so the budget and the cancel signal are query-global while
// counters stay per-worker.
type lifecycle struct {
	done    <-chan struct{}
	cause   func() error
	budget  int64
	used    atomic.Int64
	onPanic func(op string)
	fault   *fault.Injector
}

// CtxOptions configures a query's lifecycle.
type CtxOptions struct {
	// MemBudget caps the bytes of rows the query's blocking operators
	// (Sort, hash join builds, hash aggregation, Distinct, merge-join
	// materialization) may buffer; 0 means unlimited.
	MemBudget int64
	// OnPanic, when set, is invoked (with the attributed operator) every
	// time a recover() boundary converts a panic; the engine counts these.
	OnPanic func(op string)
	// Fault, when set, injects deterministic storage faults at every page
	// checkpoint.
	Fault *fault.Injector
	// Snap is the MVCC snapshot timestamp every scan in the query reads at;
	// 0 means the latest committed state (storage.SnapLatest).
	Snap int64
	// TID is the reading transaction's ID (its own uncommitted writes are
	// visible); 0 for none.
	TID int64
}

// NewCtx returns a Ctx carrying the lifecycle derived from ctx and opts.
// A background context with no budget and no fault injector yields a bare
// Ctx whose per-page checkpoint is a single nil check — the configuration
// benchmarked by BenchmarkR1's baseline.
func NewCtx(ctx context.Context, o CtxOptions) *Ctx {
	c := &Ctx{Snap: o.Snap, TID: o.TID}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && o.MemBudget <= 0 && o.Fault == nil && o.OnPanic == nil {
		return c
	}
	c.life = &lifecycle{
		done:    ctx.Done(),
		cause:   ctx.Err,
		budget:  o.MemBudget,
		onPanic: o.OnPanic,
		fault:   o.Fault,
	}
	return c
}

// Child returns a Ctx with fresh counters sharing c's lifecycle and skip
// recorder. Parallel operators give each worker a Child so cancellation,
// the memory budget, fault injection, and skip attribution stay
// query-global while counter merges stay exact.
func (c *Ctx) Child() *Ctx {
	return &Ctx{life: c.life, Skips: c.Skips, Shorts: c.Shorts, Snap: c.Snap, TID: c.TID}
}

// checkpoint is the per-page (or per-batch) lifecycle check every data
// source runs: it observes cancellation and consults the fault injector.
// The no-lifecycle fast path is a single pointer test, keeping the
// steady-state overhead within the R1 budget (<5%).
func (c *Ctx) checkpoint(op string) error {
	l := c.life
	if l == nil {
		return nil
	}
	if l.done != nil {
		select {
		case <-l.done:
			return CancelError(op, l.cause())
		default:
		}
	}
	if l.fault != nil {
		if err := l.fault.PageRead(op); err != nil {
			return &QueryError{Op: op, Kind: KindError, Err: err}
		}
	}
	return nil
}

// Reserve charges n bytes of buffered-row memory against the query's
// budget, returning a KindMemBudget QueryError once the query-global total
// exceeds it. Reservations are never released: the budget bounds the
// cumulative bytes a query materializes, which dominates its peak for the
// one-shot blocking operators that call this.
func (c *Ctx) Reserve(op string, n int64) error {
	l := c.life
	if l == nil || l.budget <= 0 {
		return nil
	}
	if l.used.Add(n) > l.budget {
		return &QueryError{Op: op, Kind: KindMemBudget,
			Err: fmt.Errorf("%w (budget %d bytes)", ErrMemBudget, l.budget)}
	}
	return nil
}

// MemReserved reports the bytes of buffered-row memory charged so far.
func (c *Ctx) MemReserved() int64 {
	if c.life == nil {
		return 0
	}
	return c.life.used.Load()
}

// recoverPanic converts a panic on the calling goroutine into a
// KindPanic QueryError written to *errp, and fires the OnPanic hook.
// Intended as `defer ctx.recoverPanic(op, &err)` in every worker
// goroutine; when no panic is in flight it leaves *errp untouched.
func (c *Ctx) recoverPanic(op string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	*errp = PanicError(op, r)
	if l := c.life; l != nil && l.onPanic != nil {
		l.onPanic(op)
	}
}

// Guard runs f, converting a panic into a QueryError attributed to op —
// the engine-boundary recover() that keeps a poisoned serial plan from
// crashing the process. Worker goroutines have their own recovery; Guard
// covers everything that runs on the calling goroutine.
func Guard(c *Ctx, op string, f func() error) (err error) {
	defer c.recoverPanic(op, &err)
	return f()
}
