package exec

import (
	"fmt"
	"testing"

	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/sql"
	"softdb/internal/types"
)

// buildRerunTrees returns named operator trees covering scan, filter,
// both join flavors, and aggregation — serial and parallel variants —
// over the same two heaps.
func buildRerunTrees(t *testing.T) map[string]Operator {
	t.Helper()
	outer := testHeap(t, 500)
	inner := testHeap(t, 200)
	joinCond := []expr.Expr{expr.NewBinary(expr.OpEq, col(0), expr.NewColumn("u", "a", 2, types.KindInt))}
	aggs := []plan.AggSpec{
		{Kind: sql.AggCountStar, Name: "n"},
		{Kind: sql.AggSum, Arg: col(1), Name: "s"},
		{Kind: sql.AggMin, Arg: col(0), Name: "lo"},
	}
	groupBy := []expr.Expr{expr.NewBinary(expr.OpSub, col(0),
		expr.NewBinary(expr.OpMul, expr.NewBinary(expr.OpDiv, col(0), iconst(10)), iconst(10)))}
	return map[string]Operator{
		"seqscan": &SeqScan{Table: "t", Heap: outer, Filter: []expr.Expr{
			expr.NewBinary(expr.OpLt, col(0), iconst(100)),
		}},
		"parallelscan": &ParallelScan{Table: "t", Heap: outer, Workers: 4, Filter: []expr.Expr{
			expr.NewBinary(expr.OpLt, col(0), iconst(100)),
		}},
		"filter": &Filter{
			Input: &SeqScan{Table: "t", Heap: outer},
			Conds: []expr.Expr{expr.NewBinary(expr.OpGe, col(1), iconst(500))},
		},
		"nested-loop-join": &NestedLoopJoin{
			Outer: &SeqScan{Table: "t", Heap: outer, Filter: []expr.Expr{expr.NewBinary(expr.OpLt, col(0), iconst(50))}},
			Inner: &SeqScan{Table: "u", Heap: inner},
			Cond:  joinCond,
		},
		"hash-join": &HashJoin{
			Left:     &SeqScan{Table: "u", Heap: inner},
			Right:    &SeqScan{Table: "t", Heap: outer},
			LeftKeys: []expr.Expr{col(0)},
			RightKey: []expr.Expr{col(0)},
		},
		"partitioned-hash-join": &PartitionedHashJoin{
			Left:     &ParallelScan{Table: "u", Heap: inner, Workers: 4},
			Right:    &ParallelScan{Table: "t", Heap: outer, Workers: 4},
			LeftKeys: []expr.Expr{col(0)},
			RightKey: []expr.Expr{col(0)},
			Workers:  4,
		},
		"hash-aggregate": &HashAggregate{
			Input:   &SeqScan{Table: "t", Heap: outer},
			GroupBy: groupBy,
			Aggs:    aggs,
		},
		"parallel-hash-aggregate": &ParallelHashAggregate{
			Input:   &ParallelScan{Table: "t", Heap: outer, Workers: 4},
			GroupBy: groupBy,
			Aggs:    aggs,
			Workers: 4,
		},
		"agg-over-join": &HashAggregate{
			Input: &HashJoin{
				Left:     &SeqScan{Table: "u", Heap: inner},
				Right:    &SeqScan{Table: "t", Heap: outer},
				LeftKeys: []expr.Expr{col(0)},
				RightKey: []expr.Expr{col(0)},
			},
			Aggs: []plan.AggSpec{{Kind: sql.AggCountStar, Name: "n"}},
		},
	}
}

// TestOperatorsAreReRunnable runs each full operator tree twice with fresh
// contexts: the package documents operators as re-runnable (nested-loop
// join depends on it), so a second Run must reproduce the first run's rows
// and charge exactly the same counters.
func TestOperatorsAreReRunnable(t *testing.T) {
	for name, op := range buildRerunTrees(t) {
		t.Run(name, func(t *testing.T) {
			ctx1 := &Ctx{}
			first, err := Collect(op, ctx1)
			if err != nil {
				t.Fatal(err)
			}
			ctx2 := &Ctx{}
			second, err := Collect(op, ctx2)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) == 0 {
				t.Fatal("trees under test must produce rows")
			}
			if got, want := rowKeys(second), rowKeys(first); got != want {
				t.Errorf("rerun rows diverged:\nfirst:  %s\nsecond: %s", want, got)
			}
			if ctx1.String() != ctx2.String() {
				t.Errorf("rerun counters diverged: first %s, second %s", ctx1, ctx2)
			}
		})
	}
}

// rowKeys renders a sorted multiset fingerprint of rows (parallel trees
// may emit in any order).
func rowKeys(rows []types.Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	sortStrings(keys)
	return fmt.Sprint(keys)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestParallelMatchesSerial checks that each parallel operator produces
// the same row multiset and identical page/row charges as its serial twin.
func TestParallelMatchesSerial(t *testing.T) {
	trees := buildRerunTrees(t)
	pairs := [][2]string{
		{"seqscan", "parallelscan"},
		{"hash-join", "partitioned-hash-join"},
		{"hash-aggregate", "parallel-hash-aggregate"},
	}
	for _, p := range pairs {
		t.Run(p[1], func(t *testing.T) {
			sctx, pctx := &Ctx{}, &Ctx{}
			srows, err := Collect(trees[p[0]], sctx)
			if err != nil {
				t.Fatal(err)
			}
			prows, err := Collect(trees[p[1]], pctx)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := rowKeys(prows), rowKeys(srows); got != want {
				t.Errorf("parallel rows diverged from serial:\nserial:   %s\nparallel: %s", want, got)
			}
			if sctx.IO != pctx.IO {
				t.Errorf("IO diverged: serial %+v, parallel %+v", sctx.IO, pctx.IO)
			}
			if sctx.HashProbes != pctx.HashProbes {
				t.Errorf("probes diverged: serial %d, parallel %d", sctx.HashProbes, pctx.HashProbes)
			}
		})
	}
}

// TestSplitRange checks the contiguous page partitioning is exhaustive and
// disjoint for awkward sizes.
func TestSplitRange(t *testing.T) {
	for _, tc := range [][2]int{{1, 1}, {5, 4}, {4, 5}, {100, 7}, {8, 8}} {
		n, parts := tc[0], tc[1]
		next := 0
		for p := 0; p < parts; p++ {
			lo, hi := splitRange(n, parts, p)
			if lo != next {
				t.Fatalf("n=%d parts=%d part=%d: lo=%d want %d", n, parts, p, lo, next)
			}
			if hi < lo {
				t.Fatalf("n=%d parts=%d part=%d: hi=%d < lo=%d", n, parts, p, hi, lo)
			}
			next = hi
		}
		if next != n {
			t.Fatalf("n=%d parts=%d: covered %d", n, parts, next)
		}
	}
}

// TestSerializeDemotesParallelLeaves checks the NLJ-side transform.
func TestSerializeDemotesParallelLeaves(t *testing.T) {
	h := testHeap(t, 10)
	op := &Filter{
		Input: &ParallelScan{Table: "t", Heap: h, Workers: 4},
		Conds: []expr.Expr{expr.NewBinary(expr.OpGt, col(0), iconst(1))},
	}
	got := Serialize(op)
	f, ok := got.(*Filter)
	if !ok {
		t.Fatalf("Serialize returned %T", got)
	}
	if _, ok := f.Input.(*SeqScan); !ok {
		t.Fatalf("parallel scan not demoted: %T", f.Input)
	}
}
