package exec

import "sync"

// SkipRecorder attributes pruned pages to the prune-predicate source that
// proved them skippable — "filter" for the query's own sargable conjuncts,
// or a constraint/correlation/hole-set catalog name. One recorder serves a
// whole query: serial scans, parallel partition workers, and nested-loop
// re-runs all share it (the Ctx.Child tree propagates the pointer), so the
// engine can flush exact per-constraint totals into the economy ledger
// after the query quiesces.
//
// A nil *SkipRecorder ignores adds and reports nothing, matching the obs
// package's disable-by-nil convention: scans outside an economy-tracked
// query pay only a nil check per skipped page.
type SkipRecorder struct {
	mu       sync.Mutex
	bySource map[string]int64
}

// NewSkipRecorder returns an empty recorder.
func NewSkipRecorder() *SkipRecorder {
	return &SkipRecorder{bySource: map[string]int64{}}
}

// Add credits one skipped page to the named source.
func (r *SkipRecorder) Add(source string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.bySource[source]++
	r.mu.Unlock()
}

// AddN credits n events (e.g. every row of a short-circuited page) to
// source at once. Nil-safe like Add.
func (r *SkipRecorder) AddN(source string, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.bySource[source] += n
	r.mu.Unlock()
}

// Counts returns a copy of the per-source skip totals.
func (r *SkipRecorder) Counts() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.bySource))
	for k, v := range r.bySource {
		out[k] = v
	}
	return out
}

// Total returns the sum over all sources.
func (r *SkipRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, v := range r.bySource {
		n += v
	}
	return n
}
