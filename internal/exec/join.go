package exec

import (
	"fmt"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/types"
	"softdb/internal/vec"
)

// NestedLoopJoin evaluates Outer once and re-runs Inner for every outer
// row, emitting outer++inner rows that satisfy Cond (conjuncts bound to the
// concatenated schema).
type NestedLoopJoin struct {
	Outer, Inner Operator
	Cond         []expr.Expr
}

// Run implements Operator.
func (j *NestedLoopJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var inner error
	stopped := false
	err := j.Outer.Run(ctx, func(orow types.Row) bool {
		o := orow.Clone()
		err := j.Inner.Run(ctx, func(irow types.Row) bool {
			ctx.AddComparisons(1)
			joined := o.Concat(irow)
			ok, err := evalFilters(j.Cond, joined)
			if err != nil {
				inner = err
				return false
			}
			if !ok {
				return true
			}
			if !emit(joined) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			inner = err
			return false
		}
		return !stopped && inner == nil
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (j *NestedLoopJoin) Describe() string {
	d := "NestedLoopJoin"
	if len(j.Cond) > 0 {
		d += " on " + expr.And(j.Cond...).String()
	}
	return d
}

// Inputs implements Operator.
func (j *NestedLoopJoin) Inputs() []Operator { return []Operator{j.Outer, j.Inner} }

// HashJoin builds a hash table on Left's key columns, probes with Right,
// and emits left++right rows. Residual conjuncts (bound to the concatenated
// schema) are applied after key matching. NULL keys never match.
//
// Proj, when non-nil, narrows the output: each emitted row holds only the
// named ordinals of the concatenated schema, in order (an empty non-nil
// Proj emits zero-width rows — all an aggregate's COUNT(*) needs). The
// optimizer sets it by fusing a bare-column projection above the join, so
// joined columns nothing upstream reads are never materialized. Residual
// conjuncts still see the full concatenated row.
type HashJoin struct {
	Left, Right        Operator
	LeftKeys, RightKey []expr.Expr // parallel key expressions on each side
	Residual           []expr.Expr
	Proj               []int
}

// Run implements Operator.
func (j *HashJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	build := map[string][]types.Row{}
	var inner error
	err := j.Left.Run(ctx, func(row types.Row) bool {
		key, null, err := hashKey(j.LeftKeys, row)
		if err != nil {
			inner = err
			return false
		}
		if null {
			return true
		}
		if err := ctx.Reserve("HashJoin build", row.MemSize()); err != nil {
			inner = err
			return false
		}
		build[key] = append(build[key], row.Clone())
		return true
	})
	if err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	stopped := false
	err = j.Right.Run(ctx, func(row types.Row) bool {
		ctx.AddProbes(1)
		key, null, err := hashKey(j.RightKey, row)
		if err != nil {
			inner = err
			return false
		}
		if null {
			return true
		}
		for _, l := range build[key] {
			joined := l.Concat(row)
			ok, err := evalFilters(j.Residual, joined)
			if err != nil {
				inner = err
				return false
			}
			if !ok {
				continue
			}
			if j.Proj != nil {
				joined = projectOrds(joined, j.Proj)
			}
			if !emit(joined) {
				stopped = true
				return false
			}
		}
		return true
	})
	if inner != nil {
		return inner
	}
	if stopped {
		return nil
	}
	return err
}

// BatchCapable implements BatchOperator: probe-side batches are what the
// vectorized path streams, so it needs a batch-capable right input.
func (j *HashJoin) BatchCapable() bool {
	_, ok := AsBatch(j.Right)
	return ok
}

// intJoinKey reports whether keys is a single bare integer-image column
// (INT or DATE — BOOL renders as TRUE/FALSE in row keys, not numerically),
// enabling the float64-image fast path that matches Row.Key's numeric
// normalization exactly, including int/date cross-kind equality.
func intJoinKey(keys []expr.Expr) (*expr.Column, bool) {
	if len(keys) != 1 {
		return nil, false
	}
	c, ok := keys[0].(*expr.Column)
	if !ok || c.Index < 0 {
		return nil, false
	}
	switch c.Kind {
	case types.KindInt, types.KindDate:
		return c, true
	}
	return nil, false
}

// joinTable is a batched hash join's build side: rows keyed by the float64
// image of a single integer-class key (fast mode) or by the composite
// string key (general mode). Fast mode degrades to general in place when a
// batch fails column extraction, preserving every row already built.
type joinTable struct {
	ints map[float64][]types.Row
	strs map[string][]types.Row
}

// degrade converts fast-mode keys to the string keys hashKey would have
// produced: the float image round-trips through the same normalization
// Row.Key applies to numeric datums, so lookups stay consistent.
func (t *joinTable) degrade() {
	if t.ints == nil {
		return
	}
	if t.strs == nil {
		t.strs = make(map[string][]types.Row, len(t.ints))
	}
	for f, rows := range t.ints {
		t.strs[types.Row{types.NewFloat(f)}.Key()] = rows
	}
	t.ints = nil
}

// addGeneric folds one batch into the string-keyed table row by row.
func (t *joinTable) addGeneric(ctx *Ctx, keys []expr.Expr, b *vec.Batch) error {
	n := b.Len()
	for i := 0; i < n; i++ {
		row := b.Row(i)
		key, null, err := hashKey(keys, row)
		if err != nil {
			return err
		}
		if null {
			continue
		}
		if err := ctx.Reserve("HashJoin build", row.MemSize()); err != nil {
			return err
		}
		if !b.Owned {
			row = row.Clone()
		}
		t.strs[key] = append(t.strs[key], row)
	}
	return nil
}

// buildTable materializes the build side for RunBatch, preferring the
// batched int-image fast path when both key sides are bare integer-class
// columns and the left input streams batches.
func (j *HashJoin) buildTable(ctx *Ctx) (*joinTable, error) {
	t := &joinTable{}
	lcol, lok := intJoinKey(j.LeftKeys)
	_, rok := intJoinKey(j.RightKey)
	lb, lbatch := AsBatch(j.Left)
	if lok && rok && lbatch {
		t.ints = map[float64][]types.Row{}
		var inner error
		err := lb.RunBatch(ctx, func(b *vec.Batch) bool {
			if t.ints != nil {
				if c := b.Col(lcol.Index, vec.ClassInt); c != nil {
					n := b.Len()
					for i := 0; i < n; i++ {
						idx := b.Index(i)
						if c.Nulls[idx] {
							continue
						}
						row := b.Rows[idx]
						if err := ctx.Reserve("HashJoin build", row.MemSize()); err != nil {
							inner = err
							return false
						}
						if !b.Owned {
							row = row.Clone()
						}
						k := float64(c.Ints[idx])
						t.ints[k] = append(t.ints[k], row)
					}
					return true
				}
				// This window holds a datum the int image cannot carry
				// (e.g. a FLOAT in an INT column): fall back to string
				// keys for everything, past and future.
				t.degrade()
			}
			if inner = t.addGeneric(ctx, j.LeftKeys, b); inner != nil {
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if inner != nil {
			return nil, inner
		}
		return t, nil
	}
	t.strs = map[string][]types.Row{}
	var inner error
	err := j.Left.Run(ctx, func(row types.Row) bool {
		key, null, err := hashKey(j.LeftKeys, row)
		if err != nil {
			inner = err
			return false
		}
		if null {
			return true
		}
		if err := ctx.Reserve("HashJoin build", row.MemSize()); err != nil {
			inner = err
			return false
		}
		t.strs[key] = append(t.strs[key], row.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return t, nil
}

// RunBatch implements BatchOperator: build over the left input (batched
// when possible), then probe with each right-side batch, emitting matches
// as one owned batch per input batch. Counter totals match Run except that
// probes are charged batch-at-a-time, so a LIMIT that stops mid-batch has
// already paid for the whole window (the same granularity rule as page
// reads).
// joinSlabDatums sizes the chunked allocation joined rows are carved from:
// one make per ~4k datums instead of one Concat per match. Carved rows are
// never rewritten, so emitting them in an owned batch is safe.
const joinSlabDatums = 4096

func (j *HashJoin) RunBatch(ctx *Ctx, emit func(b *vec.Batch) bool) error {
	t, err := j.buildTable(ctx)
	if err != nil {
		return err
	}
	rcol, rok := intJoinKey(j.RightKey)
	var inner error
	stopped := false
	var out []types.Row
	var slab []types.Datum
	var concatBuf types.Row // residual scratch when Proj narrows the output
	var ob vec.Batch
	err = RunBatched(j.Right, ctx, func(b *vec.Batch) bool {
		n := b.Len()
		ctx.AddProbes(int64(n))
		var c *vec.Col
		if t.ints != nil {
			if rok {
				c = b.Col(rcol.Index, vec.ClassInt)
			}
			if c == nil {
				t.degrade()
			}
		}
		out = out[:0]
		for i := 0; i < n; i++ {
			var row types.Row
			var matches []types.Row
			if c != nil {
				idx := b.Index(i)
				if c.Nulls[idx] {
					continue
				}
				row = b.Rows[idx]
				matches = t.ints[float64(c.Ints[idx])]
			} else {
				row = b.Row(i)
				key, null, err := hashKey(j.RightKey, row)
				if err != nil {
					inner = err
					return false
				}
				if null {
					continue
				}
				matches = t.strs[key]
			}
			for _, l := range matches {
				lw := len(l)
				w := lw + len(row)
				if j.Proj != nil {
					w = len(j.Proj)
				}
				if len(slab) < w {
					sz := joinSlabDatums
					if sz < w {
						sz = w
					}
					slab = make([]types.Datum, sz)
				}
				joined := types.Row(slab[:w:w])
				switch {
				case j.Proj == nil:
					copy(joined, l)
					copy(joined[lw:], row)
					ok, err := evalFilters(j.Residual, joined)
					if err != nil {
						inner = err
						return false
					}
					if !ok {
						continue // the carved space is reused by the next match
					}
				case len(j.Residual) > 0:
					// The residual is bound to the full concatenated schema;
					// build it once in scratch, then carve the projection.
					concatBuf = append(append(concatBuf[:0], l...), row...)
					ok, err := evalFilters(j.Residual, concatBuf)
					if err != nil {
						inner = err
						return false
					}
					if !ok {
						continue
					}
					for k, ord := range j.Proj {
						joined[k] = concatBuf[ord]
					}
				default:
					for k, ord := range j.Proj {
						if ord < lw {
							joined[k] = l[ord]
						} else {
							joined[k] = row[ord-lw]
						}
					}
				}
				slab = slab[w:]
				out = append(out, joined)
			}
		}
		if len(out) == 0 {
			return true
		}
		ob.Reset(out)
		ob.Owned = true
		if !emit(&ob) {
			stopped = true
			return false
		}
		return true
	})
	if inner != nil {
		return inner
	}
	if stopped {
		return nil
	}
	return err
}

// rowsMemSize totals the memory footprint of a materialized row set.
func rowsMemSize(rows []types.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.MemSize()
	}
	return n
}

// projectOrds materializes the named ordinals of a row as a fresh row.
func projectOrds(row types.Row, ords []int) types.Row {
	out := make(types.Row, len(ords))
	for i, ord := range ords {
		out[i] = row[ord]
	}
	return out
}

func hashKey(keys []expr.Expr, row types.Row) (string, bool, error) {
	vals := make(types.Row, len(keys))
	for i, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = v
	}
	return vals.Key(), false, nil
}

// Describe implements Operator.
func (j *HashJoin) Describe() string {
	var pairs []string
	for i := range j.LeftKeys {
		pairs = append(pairs, fmt.Sprintf("%s=%s", j.LeftKeys[i], j.RightKey[i]))
	}
	d := "HashJoin on " + strings.Join(pairs, ", ")
	if len(j.Residual) > 0 {
		d += " residual=" + expr.And(j.Residual...).String()
	}
	if j.Proj != nil {
		var ords []string
		for _, ord := range j.Proj {
			ords = append(ords, fmt.Sprintf("#%d", ord))
		}
		d += " proj=[" + strings.Join(ords, ", ") + "]"
	}
	return d
}

// Inputs implements Operator.
func (j *HashJoin) Inputs() []Operator { return []Operator{j.Left, j.Right} }

// MergeJoin merge-joins two inputs already sorted on their single join
// keys. It materializes both sides (our operators are push-based), so its
// advantage here is the comparison count, which the cost model tracks.
type MergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Expr
	Residual          []expr.Expr
}

// Run implements Operator.
func (j *MergeJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	lrows, err := Collect(j.Left, ctx)
	if err != nil {
		return err
	}
	if err := ctx.Reserve("MergeJoin", rowsMemSize(lrows)); err != nil {
		return err
	}
	rrows, err := Collect(j.Right, ctx)
	if err != nil {
		return err
	}
	if err := ctx.Reserve("MergeJoin", rowsMemSize(rrows)); err != nil {
		return err
	}
	lkeys := make([]types.Datum, len(lrows))
	for i, r := range lrows {
		v, err := j.LeftKey.Eval(r)
		if err != nil {
			return err
		}
		lkeys[i] = v
	}
	rkeys := make([]types.Datum, len(rrows))
	for i, r := range rrows {
		v, err := j.RightKey.Eval(r)
		if err != nil {
			return err
		}
		rkeys[i] = v
	}
	li, ri := 0, 0
	for li < len(lrows) && ri < len(rrows) {
		ctx.AddComparisons(1)
		lv, rv := lkeys[li], rkeys[ri]
		if lv.IsNull() {
			li++
			continue
		}
		if rv.IsNull() {
			ri++
			continue
		}
		c := lv.Compare(rv)
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			// Emit the cross product of the equal runs.
			lj := li
			for lj < len(lrows) && lkeys[lj].Compare(lv) == 0 {
				lj++
			}
			rj := ri
			for rj < len(rrows) && rkeys[rj].Compare(rv) == 0 {
				rj++
			}
			for a := li; a < lj; a++ {
				for b := ri; b < rj; b++ {
					joined := lrows[a].Concat(rrows[b])
					ok, err := evalFilters(j.Residual, joined)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					if !emit(joined) {
						return nil
					}
				}
			}
			li, ri = lj, rj
		}
	}
	return nil
}

// Describe implements Operator.
func (j *MergeJoin) Describe() string {
	d := fmt.Sprintf("MergeJoin on %s=%s", j.LeftKey, j.RightKey)
	if len(j.Residual) > 0 {
		d += " residual=" + expr.And(j.Residual...).String()
	}
	return d
}

// Inputs implements Operator.
func (j *MergeJoin) Inputs() []Operator { return []Operator{j.Left, j.Right} }
