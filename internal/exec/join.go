package exec

import (
	"fmt"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/types"
)

// NestedLoopJoin evaluates Outer once and re-runs Inner for every outer
// row, emitting outer++inner rows that satisfy Cond (conjuncts bound to the
// concatenated schema).
type NestedLoopJoin struct {
	Outer, Inner Operator
	Cond         []expr.Expr
}

// Run implements Operator.
func (j *NestedLoopJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	var inner error
	stopped := false
	err := j.Outer.Run(ctx, func(orow types.Row) bool {
		o := orow.Clone()
		err := j.Inner.Run(ctx, func(irow types.Row) bool {
			ctx.AddComparisons(1)
			joined := o.Concat(irow)
			ok, err := evalFilters(j.Cond, joined)
			if err != nil {
				inner = err
				return false
			}
			if !ok {
				return true
			}
			if !emit(joined) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			inner = err
			return false
		}
		return !stopped && inner == nil
	})
	if inner != nil {
		return inner
	}
	return err
}

// Describe implements Operator.
func (j *NestedLoopJoin) Describe() string {
	d := "NestedLoopJoin"
	if len(j.Cond) > 0 {
		d += " on " + expr.And(j.Cond...).String()
	}
	return d
}

// Inputs implements Operator.
func (j *NestedLoopJoin) Inputs() []Operator { return []Operator{j.Outer, j.Inner} }

// HashJoin builds a hash table on Left's key columns, probes with Right,
// and emits left++right rows. Residual conjuncts (bound to the concatenated
// schema) are applied after key matching. NULL keys never match.
type HashJoin struct {
	Left, Right        Operator
	LeftKeys, RightKey []expr.Expr // parallel key expressions on each side
	Residual           []expr.Expr
}

// Run implements Operator.
func (j *HashJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	build := map[string][]types.Row{}
	var inner error
	err := j.Left.Run(ctx, func(row types.Row) bool {
		key, null, err := hashKey(j.LeftKeys, row)
		if err != nil {
			inner = err
			return false
		}
		if null {
			return true
		}
		if err := ctx.Reserve("HashJoin build", row.MemSize()); err != nil {
			inner = err
			return false
		}
		build[key] = append(build[key], row.Clone())
		return true
	})
	if err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	stopped := false
	err = j.Right.Run(ctx, func(row types.Row) bool {
		ctx.AddProbes(1)
		key, null, err := hashKey(j.RightKey, row)
		if err != nil {
			inner = err
			return false
		}
		if null {
			return true
		}
		for _, l := range build[key] {
			joined := l.Concat(row)
			ok, err := evalFilters(j.Residual, joined)
			if err != nil {
				inner = err
				return false
			}
			if !ok {
				continue
			}
			if !emit(joined) {
				stopped = true
				return false
			}
		}
		return true
	})
	if inner != nil {
		return inner
	}
	if stopped {
		return nil
	}
	return err
}

// rowsMemSize totals the memory footprint of a materialized row set.
func rowsMemSize(rows []types.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.MemSize()
	}
	return n
}

func hashKey(keys []expr.Expr, row types.Row) (string, bool, error) {
	vals := make(types.Row, len(keys))
	for i, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = v
	}
	return vals.Key(), false, nil
}

// Describe implements Operator.
func (j *HashJoin) Describe() string {
	var pairs []string
	for i := range j.LeftKeys {
		pairs = append(pairs, fmt.Sprintf("%s=%s", j.LeftKeys[i], j.RightKey[i]))
	}
	d := "HashJoin on " + strings.Join(pairs, ", ")
	if len(j.Residual) > 0 {
		d += " residual=" + expr.And(j.Residual...).String()
	}
	return d
}

// Inputs implements Operator.
func (j *HashJoin) Inputs() []Operator { return []Operator{j.Left, j.Right} }

// MergeJoin merge-joins two inputs already sorted on their single join
// keys. It materializes both sides (our operators are push-based), so its
// advantage here is the comparison count, which the cost model tracks.
type MergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Expr
	Residual          []expr.Expr
}

// Run implements Operator.
func (j *MergeJoin) Run(ctx *Ctx, emit func(types.Row) bool) error {
	lrows, err := Collect(j.Left, ctx)
	if err != nil {
		return err
	}
	if err := ctx.Reserve("MergeJoin", rowsMemSize(lrows)); err != nil {
		return err
	}
	rrows, err := Collect(j.Right, ctx)
	if err != nil {
		return err
	}
	if err := ctx.Reserve("MergeJoin", rowsMemSize(rrows)); err != nil {
		return err
	}
	lkeys := make([]types.Datum, len(lrows))
	for i, r := range lrows {
		v, err := j.LeftKey.Eval(r)
		if err != nil {
			return err
		}
		lkeys[i] = v
	}
	rkeys := make([]types.Datum, len(rrows))
	for i, r := range rrows {
		v, err := j.RightKey.Eval(r)
		if err != nil {
			return err
		}
		rkeys[i] = v
	}
	li, ri := 0, 0
	for li < len(lrows) && ri < len(rrows) {
		ctx.AddComparisons(1)
		lv, rv := lkeys[li], rkeys[ri]
		if lv.IsNull() {
			li++
			continue
		}
		if rv.IsNull() {
			ri++
			continue
		}
		c := lv.Compare(rv)
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			// Emit the cross product of the equal runs.
			lj := li
			for lj < len(lrows) && lkeys[lj].Compare(lv) == 0 {
				lj++
			}
			rj := ri
			for rj < len(rrows) && rkeys[rj].Compare(rv) == 0 {
				rj++
			}
			for a := li; a < lj; a++ {
				for b := ri; b < rj; b++ {
					joined := lrows[a].Concat(rrows[b])
					ok, err := evalFilters(j.Residual, joined)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					if !emit(joined) {
						return nil
					}
				}
			}
			li, ri = lj, rj
		}
	}
	return nil
}

// Describe implements Operator.
func (j *MergeJoin) Describe() string {
	d := fmt.Sprintf("MergeJoin on %s=%s", j.LeftKey, j.RightKey)
	if len(j.Residual) > 0 {
		d += " residual=" + expr.And(j.Residual...).String()
	}
	return d
}

// Inputs implements Operator.
func (j *MergeJoin) Inputs() []Operator { return []Operator{j.Left, j.Right} }
