package exec

import (
	"sort"
	"testing"

	"softdb/internal/btree"
	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/schema"
	"softdb/internal/sql"
	"softdb/internal/storage"
	"softdb/internal/types"
)

func intRows(vals ...int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		out[i] = types.Row{types.NewInt(v)}
	}
	return out
}

func col(i int) *expr.Column { return expr.NewColumn("t", "c", i, types.KindInt) }

func iconst(v int64) *expr.Const { return expr.NewConst(types.NewInt(v)) }

func collect(t *testing.T, op Operator) []types.Row {
	t.Helper()
	rows, err := Collect(op, &Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func testHeap(t *testing.T, n int) *storage.Heap {
	t.Helper()
	def := mustTable("t",
		schema.Column{Name: "a", Type: types.KindInt},
		schema.Column{Name: "b", Type: types.KindInt},
	)
	h := storage.NewHeap(def)
	for i := 0; i < n; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i * 2))})
	}
	return h
}

func TestSeqScanFilter(t *testing.T) {
	h := testHeap(t, 100)
	op := &SeqScan{Table: "t", Heap: h, Filter: []expr.Expr{
		expr.NewBinary(expr.OpLt, col(0), iconst(10)),
	}}
	rows := collect(t, op)
	if len(rows) != 10 {
		t.Errorf("rows: %d", len(rows))
	}
	ctx := &Ctx{}
	_, _ = Collect(op, ctx)
	if ctx.IO.PagesRead != h.PageCount() {
		t.Errorf("seq scan pages: %d want %d", ctx.IO.PagesRead, h.PageCount())
	}
}

func TestIndexScanRangeAndPageDedup(t *testing.T) {
	h := testHeap(t, 1000)
	ix := &catalog.Index{Name: "ia", Table: "t", Columns: []string{"a"}, Ordinal: []int{0}, Tree: btree.New()}
	h.Scan(nil, func(id storage.RowID, row types.Row) bool {
		ix.Tree.Insert(ix.KeyFor(row), id)
		return true
	})
	op := &IndexScan{
		Table: "t", Heap: h, Index: ix,
		Lo: btree.Bound{Key: types.Row{types.NewInt(100)}, Inclusive: true},
		Hi: btree.Bound{Key: types.Row{types.NewInt(199)}, Inclusive: true},
	}
	ctx := &Ctx{}
	rows, err := Collect(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Clustered data: 100 contiguous rows span very few heap pages, each
	// charged once despite 100 fetches.
	if ctx.IO.PagesRead > 10 {
		t.Errorf("clustered index scan should dedupe pages: %d", ctx.IO.PagesRead)
	}
	// Residual filter still applies.
	op.Filter = []expr.Expr{expr.Eq(col(1), iconst(300))}
	rows = collect(t, op)
	if len(rows) != 1 || rows[0][0].Int() != 150 {
		t.Errorf("residual: %v", rows)
	}
}

func TestFilterProjectLimit(t *testing.T) {
	src := &Values{Rows: intRows(1, 2, 3, 4, 5)}
	f := &Filter{Input: src, Conds: []expr.Expr{expr.NewBinary(expr.OpGt, col(0), iconst(2))}}
	p := &Project{Input: f, Exprs: []expr.Expr{expr.NewBinary(expr.OpMul, col(0), iconst(10))}}
	l := &Limit{Input: p, N: 2}
	rows := collect(t, l)
	if len(rows) != 2 || rows[0][0].Int() != 30 || rows[1][0].Int() != 40 {
		t.Errorf("pipeline: %v", rows)
	}
	// Limit 0 yields nothing.
	if rows := collect(t, &Limit{Input: src, N: 0}); len(rows) != 0 {
		t.Errorf("limit 0: %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	src := &Values{Rows: intRows(3, 1, 3, 2, 1)}
	rows := collect(t, &Distinct{Input: src})
	if len(rows) != 3 {
		t.Errorf("distinct: %v", rows)
	}
}

func TestSortAscDescStable(t *testing.T) {
	src := &Values{Rows: []types.Row{
		{types.NewInt(2), types.NewString("b")},
		{types.NewInt(1), types.NewString("c")},
		{types.NewInt(2), types.NewString("a")},
	}}
	s := &Sort{Input: src, Keys: []plan.SortKey{{Ordinal: 0}, {Ordinal: 1, Desc: true}}}
	rows := collect(t, s)
	want := []string{"(1, 'c')", "(2, 'b')", "(2, 'a')"}
	for i, r := range rows {
		if r.String() != want[i] {
			t.Errorf("row %d: %s want %s", i, r, want[i])
		}
	}
}

func TestUnionAllOrderAndEarlyStop(t *testing.T) {
	u := &UnionAll{Arms: []Operator{
		&Values{Rows: intRows(1, 2)},
		&Values{Rows: intRows(3)},
	}}
	rows := collect(t, u)
	if len(rows) != 3 || rows[2][0].Int() != 3 {
		t.Errorf("union: %v", rows)
	}
	// Early stop across arms.
	n := 0
	err := u.Run(&Ctx{}, func(types.Row) bool { n++; return n < 2 })
	if err != nil || n != 2 {
		t.Errorf("early stop: %d", n)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	outer := &Values{Rows: intRows(1, 2, 3)}
	inner := &Values{Rows: intRows(2, 3, 4)}
	j := &NestedLoopJoin{Outer: outer, Inner: inner, Cond: []expr.Expr{
		expr.Eq(col(0), col(1)),
	}}
	rows := collect(t, j)
	if len(rows) != 2 {
		t.Fatalf("nlj: %v", rows)
	}
	if rows[0][0].Int() != 2 || rows[0][1].Int() != 2 {
		t.Errorf("nlj row: %v", rows[0])
	}
}

func TestHashJoinWithDuplicatesAndNulls(t *testing.T) {
	left := &Values{Rows: []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(1), types.NewString("b")},
		{types.Null, types.NewString("n")},
	}}
	right := &Values{Rows: []types.Row{
		{types.NewInt(1)},
		{types.NewInt(1)},
		{types.Null},
	}}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []expr.Expr{col(0)},
		RightKey: []expr.Expr{col(0)},
	}
	rows := collect(t, j)
	// 2 left × 2 right matching rows = 4; NULL keys never match.
	if len(rows) != 4 {
		t.Fatalf("hash join: %d rows: %v", len(rows), rows)
	}
	for _, r := range rows {
		if len(r) != 3 {
			t.Errorf("arity: %v", r)
		}
	}
}

func TestHashJoinResidual(t *testing.T) {
	left := &Values{Rows: []types.Row{
		{types.NewInt(1), types.NewInt(10)},
		{types.NewInt(1), types.NewInt(20)},
	}}
	right := &Values{Rows: []types.Row{{types.NewInt(1), types.NewInt(15)}}}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []expr.Expr{col(0)},
		RightKey: []expr.Expr{col(0)},
		Residual: []expr.Expr{expr.NewBinary(expr.OpLt, col(1), col(3))},
	}
	rows := collect(t, j)
	if len(rows) != 1 || rows[0][1].Int() != 10 {
		t.Errorf("residual: %v", rows)
	}
}

func TestMergeJoin(t *testing.T) {
	left := &Values{Rows: intRows(1, 2, 2, 5)}
	right := &Values{Rows: intRows(2, 2, 3, 5)}
	j := &MergeJoin{Left: left, Right: right, LeftKey: col(0), RightKey: col(0)}
	rows := collect(t, j)
	// key 2: 2x2 = 4 pairs; key 5: 1 pair.
	if len(rows) != 5 {
		t.Fatalf("merge join: %v", rows)
	}
	counts := map[int64]int{}
	for _, r := range rows {
		counts[r[0].Int()]++
	}
	if counts[2] != 4 || counts[5] != 1 {
		t.Errorf("merge join runs: %v", counts)
	}
}

func TestHashAggregate(t *testing.T) {
	src := &Values{Rows: []types.Row{
		{types.NewInt(1), types.NewInt(10)},
		{types.NewInt(2), types.NewInt(20)},
		{types.NewInt(1), types.NewInt(30)},
		{types.NewInt(1), types.Null},
	}}
	agg := &HashAggregate{
		Input:   src,
		GroupBy: []expr.Expr{col(0)},
		Aggs: []plan.AggSpec{
			{Kind: sql.AggCountStar},
			{Kind: sql.AggCount, Arg: col(1)},
			{Kind: sql.AggSum, Arg: col(1)},
			{Kind: sql.AggMin, Arg: col(1)},
			{Kind: sql.AggMax, Arg: col(1)},
			{Kind: sql.AggAvg, Arg: col(1)},
		},
	}
	rows := collect(t, agg)
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	// Deterministic group order: group 1 first.
	g1 := rows[0]
	if g1[0].Int() != 1 || g1[1].Int() != 3 || g1[2].Int() != 2 || g1[3].Int() != 40 {
		t.Errorf("group 1: %v", g1)
	}
	if g1[4].Int() != 10 || g1[5].Int() != 30 || g1[6].Float() != 20 {
		t.Errorf("group 1 min/max/avg: %v", g1)
	}
}

func TestHashAggregateRedundantGroup(t *testing.T) {
	// Group by (a, b) where b is redundant (b = a*2 in the data).
	src := &Values{Rows: []types.Row{
		{types.NewInt(1), types.NewInt(2)},
		{types.NewInt(1), types.NewInt(2)},
		{types.NewInt(3), types.NewInt(6)},
	}}
	agg := &HashAggregate{
		Input:     src,
		GroupBy:   []expr.Expr{col(0), col(1)},
		Aggs:      []plan.AggSpec{{Kind: sql.AggCountStar}},
		Redundant: []bool{false, true},
	}
	rows := collect(t, agg)
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	// Redundant column still appears in output.
	if rows[0][1].Int() != 2 || rows[1][1].Int() != 6 {
		t.Errorf("redundant values: %v", rows)
	}
}

func TestScalarAggregateOnEmpty(t *testing.T) {
	agg := &HashAggregate{
		Input: &Values{},
		Aggs: []plan.AggSpec{
			{Kind: sql.AggCountStar},
			{Kind: sql.AggSum, Arg: col(0)},
		},
	}
	rows := collect(t, agg)
	if len(rows) != 1 || rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty scalar: %v", rows)
	}
}

func TestSortComparisonCounting(t *testing.T) {
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(200 - i)
	}
	// Heavy duplication on the first key so the second key is consulted.
	src2col := &Values{}
	for _, v := range vals {
		src2col.Rows = append(src2col.Rows, types.Row{types.NewInt(v % 5), types.NewInt(v)})
	}
	one := &Sort{Input: src2col, Keys: []plan.SortKey{{Ordinal: 0}}}
	two := &Sort{Input: src2col, Keys: []plan.SortKey{{Ordinal: 0}, {Ordinal: 1}}}
	c1, c2 := &Ctx{}, &Ctx{}
	if _, err := Collect(one, c1); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(two, c2); err != nil {
		t.Fatal(err)
	}
	if c2.Comparisons <= c1.Comparisons {
		t.Errorf("two keys should cost more column comparisons: %d vs %d", c1.Comparisons, c2.Comparisons)
	}
}

func TestFormatTree(t *testing.T) {
	op := &Limit{Input: &Filter{Input: &Values{}, Conds: []expr.Expr{iconstBool(true)}}, N: 1}
	s := Format(op)
	if !contains(s, "Limit 1") || !contains(s, "Filter") {
		t.Errorf("format:\n%s", s)
	}
}

func iconstBool(b bool) expr.Expr { return expr.NewConst(types.NewBool(b)) }

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// Property: hash join matches nested-loop join on random inputs.
func TestJoinEquivalenceProperty(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		lvals := make([]int64, 30)
		rvals := make([]int64, 30)
		for i := range lvals {
			lvals[i] = int64((i*7 + seed) % 10)
			rvals[i] = int64((i*11 + seed) % 10)
		}
		left := &Values{Rows: intRows(lvals...)}
		right := &Values{Rows: intRows(rvals...)}
		hj := &HashJoin{Left: left, Right: right,
			LeftKeys: []expr.Expr{col(0)}, RightKey: []expr.Expr{col(0)}}
		nl := &NestedLoopJoin{Outer: left, Inner: right,
			Cond: []expr.Expr{expr.Eq(col(0), col(1))}}
		h := collect(t, hj)
		n := collect(t, nl)
		if len(h) != len(n) {
			t.Fatalf("seed %d: hash %d rows, nlj %d rows", seed, len(h), len(n))
		}
		sortRows(h)
		sortRows(n)
		for i := range h {
			if !h[i].Equal(n[i]) {
				t.Fatalf("seed %d row %d: %v vs %v", seed, i, h[i], n[i])
			}
		}
	}
}

func sortRows(rows []types.Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
