package exec

import (
	"strings"
	"testing"

	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/sql"
)

func TestInstrumentSerialTree(t *testing.T) {
	h := testHeap(t, 100)
	base := &Filter{
		Input: &SeqScan{Table: "t", Heap: h},
		Conds: []expr.Expr{expr.NewBinary(expr.OpLt, col(0), iconst(10))},
	}
	scan := base.Input
	inst, span := Instrument(base, func(op Operator) (float64, bool) {
		if op == scan {
			return 100, true
		}
		return 0, false
	})

	ctx := &Ctx{}
	rows, err := Collect(inst, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows: %d", len(rows))
	}
	if got := span.Rows.Load(); got != 10 {
		t.Errorf("filter span rows = %d, want 10", got)
	}
	if len(span.Children) != 1 {
		t.Fatalf("children: %d", len(span.Children))
	}
	child := span.Children[0]
	if got := child.Rows.Load(); got != 100 {
		t.Errorf("scan span rows = %d, want 100", got)
	}
	if !child.HasEst || child.EstRows != 100 {
		t.Errorf("scan estimate not recorded: %+v", child)
	}
	if child.Pages.Load() != h.PageCount() {
		t.Errorf("scan span pages = %d, want %d", child.Pages.Load(), h.PageCount())
	}
	if child.Calls.Load() != 1 || child.Nanos.Load() <= 0 {
		t.Errorf("scan span calls=%d nanos=%d", child.Calls.Load(), child.Nanos.Load())
	}
	if !strings.Contains(child.Desc, "SeqScan t") {
		t.Errorf("desc: %q", child.Desc)
	}
	// The original tree is untouched: its input is still the raw scan.
	if base.Input != scan {
		t.Error("Instrument mutated the original tree")
	}
}

func TestInstrumentPreservesParallelism(t *testing.T) {
	h := testHeap(t, 2000)
	ps := &ParallelScan{Table: "t", Heap: h, Workers: 4}
	agg := &ParallelHashAggregate{
		Input:   ps,
		GroupBy: []expr.Expr{expr.NewBinary(expr.OpDiv, col(0), iconst(300))},
		Aggs:    []plan.AggSpec{{Kind: sql.AggCountStar}},
		Workers: 4,
	}
	inst, span := Instrument(agg, nil)

	// The wrapped scan must still advertise its partitions, or the parallel
	// aggregate silently degrades to serial execution.
	top, ok := inst.(*spanOp)
	if !ok {
		t.Fatal("root not wrapped")
	}
	innerAgg, ok := top.inner.(*ParallelHashAggregate)
	if !ok {
		t.Fatalf("inner is %T", top.inner)
	}
	pin, ok := innerAgg.Input.(PartitionedOperator)
	if !ok || pin.Partitions() <= 1 {
		t.Fatalf("wrapped input lost partitioning: %T", innerAgg.Input)
	}

	ctx := &Ctx{}
	rows, err := Collect(inst, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("groups: %d", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r[1].Int()
	}
	if total != 2000 {
		t.Errorf("count sum = %d", total)
	}
	scanSpan := span.Children[0]
	if got := scanSpan.Rows.Load(); got != 2000 {
		t.Errorf("scan span rows = %d, want 2000 (summed across workers)", got)
	}
	if got := scanSpan.Calls.Load(); got != int64(pin.Partitions()) {
		t.Errorf("scan span calls = %d, want %d partitions", got, pin.Partitions())
	}
	// Pages across partitions sum to exactly one serial scan.
	if got := scanSpan.Pages.Load(); got != h.PageCount() {
		t.Errorf("scan span pages = %d, want %d", got, h.PageCount())
	}
	if MaxDegree(inst) != 4 {
		t.Errorf("MaxDegree = %d", MaxDegree(inst))
	}
}

func TestInstrumentNestedLoopCalls(t *testing.T) {
	outer := &Values{Rows: intRows(1, 2, 3)}
	innerv := &Values{Rows: intRows(10, 20)}
	j := &NestedLoopJoin{Outer: outer, Inner: innerv}
	inst, span := Instrument(j, nil)
	if _, err := Collect(inst, &Ctx{}); err != nil {
		t.Fatal(err)
	}
	if got := span.Rows.Load(); got != 6 {
		t.Errorf("join rows = %d", got)
	}
	// Inner side re-runs once per outer row.
	if got := span.Children[1].Calls.Load(); got != 3 {
		t.Errorf("inner calls = %d, want 3", got)
	}
}

func TestMaxDegreeSerial(t *testing.T) {
	h := testHeap(t, 10)
	if d := MaxDegree(&SeqScan{Table: "t", Heap: h}); d != 1 {
		t.Errorf("serial degree = %d", d)
	}
	j := &PartitionedHashJoin{
		Left:     &ParallelScan{Table: "t", Heap: h, Workers: 2},
		Right:    &SeqScan{Table: "t", Heap: h},
		LeftKeys: []expr.Expr{col(0)}, RightKey: []expr.Expr{col(0)},
		Workers: 3,
	}
	if d := MaxDegree(j); d != 3 {
		t.Errorf("join degree = %d", d)
	}
}
