package shard

import (
	"strings"
	"testing"

	"softdb/internal/expr"
	"softdb/internal/types"
)

func TestParseSpecHash(t *testing.T) {
	sp, err := ParseSpec("Sales=hash(ID)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Table != "sales" || sp.Column != "id" || sp.Scheme != SchemeHash {
		t.Fatalf("parsed %+v", sp)
	}
	if got := sp.String(); got != "sales=hash(id)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseSpecRange(t *testing.T) {
	sp, err := ParseSpec("orders=range(amount:100,200,300)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != SchemeRange || len(sp.Bounds) != 3 {
		t.Fatalf("parsed %+v", sp)
	}
	if sp.Bounds[1].Kind() != types.KindInt || sp.Bounds[1].Int() != 200 {
		t.Fatalf("bound 1 = %v", sp.Bounds[1])
	}
	if err := sp.Validate(4); err != nil {
		t.Fatalf("4 shards with 3 bounds: %v", err)
	}
	if err := sp.Validate(3); err == nil {
		t.Fatal("3 shards with 3 bounds should fail validation")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"nope",
		"t=spiral(k)",
		"t=hash()",
		"t=range(k)",
		"t=range(k:5,3)", // descending bounds
		"t=range(k:)",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestShardForRange(t *testing.T) {
	sp, _ := ParseSpec("t=range(k:100,200)")
	cases := map[int64]int{0: 0, 99: 0, 100: 1, 150: 1, 199: 1, 200: 2, 5000: 2}
	for v, want := range cases {
		if got := sp.ShardFor(types.NewInt(v), 3); got != want {
			t.Errorf("ShardFor(%d) = %d, want %d", v, got, want)
		}
	}
	if got := sp.ShardFor(types.Null, 3); got != 0 {
		t.Errorf("NULL key should route to shard 0, got %d", got)
	}
}

func TestShardForHashDeterministic(t *testing.T) {
	sp, _ := ParseSpec("t=hash(k)")
	seen := map[int]bool{}
	for i := int64(0); i < 200; i++ {
		a := sp.ShardFor(types.NewInt(i), 4)
		b := sp.ShardFor(types.NewInt(i), 4)
		if a != b {
			t.Fatalf("hash routing must be deterministic: %d vs %d", a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("shard out of range: %d", a)
		}
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("200 int keys over 4 shards hit only %d shards", len(seen))
	}
}

func TestOwnedInterval(t *testing.T) {
	sp, _ := ParseSpec("t=range(k:100,200)")
	if got := sp.OwnedInterval(0, 3).String(); got != "(-inf, 100)" {
		t.Errorf("shard 0 owns %s", got)
	}
	if got := sp.OwnedInterval(1, 3).String(); got != "[100, 200)" {
		t.Errorf("shard 1 owns %s", got)
	}
	if got := sp.OwnedInterval(2, 3).String(); got != "[200, +inf)" {
		t.Errorf("shard 2 owns %s", got)
	}
	// Hash partitions own everything everywhere.
	hp, _ := ParseSpec("t=hash(k)")
	if !hp.OwnedInterval(1, 3).IsUnbounded() {
		t.Error("hash shard should own an unbounded interval")
	}
}

func TestCandidateShards(t *testing.T) {
	sp, _ := ParseSpec("t=range(k:100,200)")
	if got := sp.CandidateShards(expr.Point(types.NewInt(150)), 3); len(got) != 1 || got[0] != 1 {
		t.Errorf("point 150 candidates = %v", got)
	}
	if got := sp.CandidateShards(expr.AtLeast(types.NewInt(150), true), 3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("k >= 150 candidates = %v", got)
	}
	if got := sp.CandidateShards(expr.Unbounded(), 3); len(got) != 3 {
		t.Errorf("unbounded candidates = %v", got)
	}
	if got := sp.CandidateShards(expr.Interval{ExactEmpty: true}, 3); got != nil {
		t.Errorf("empty interval candidates = %v", got)
	}
	// Hash: equality routes exactly, ranges fan out.
	hp, _ := ParseSpec("t=hash(k)")
	if got := hp.CandidateShards(expr.Point(types.NewInt(7)), 4); len(got) != 1 {
		t.Errorf("hash point candidates = %v", got)
	}
	if got := hp.CandidateShards(expr.AtLeast(types.NewInt(7), true), 4); len(got) != 4 {
		t.Errorf("hash range candidates = %v", got)
	}
}

func TestParseHole(t *testing.T) {
	h, err := ParseHole("2:Orders.Amount:100,200")
	if err != nil {
		t.Fatal(err)
	}
	if h.Shard != 2 || h.Table != "orders" || h.Column != "amount" {
		t.Fatalf("parsed %+v", h)
	}
	if h.Lo.Int() != 100 || h.Hi.Int() != 200 {
		t.Fatalf("bounds %v %v", h.Lo, h.Hi)
	}
	for _, bad := range []string{"orders.amount:1,2", "x:t.c:1,2", "0:t:1,2", "0:t.c:9,1"} {
		if _, err := ParseHole(bad); err == nil {
			t.Errorf("ParseHole(%q) should fail", bad)
		}
	}
}

func TestSpecBoundKinds(t *testing.T) {
	sp, err := ParseSpec("t=range(name:'m')")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Bounds[0].Kind() != types.KindString || sp.Bounds[0].Str() != "m" {
		t.Fatalf("string bound = %v", sp.Bounds[0])
	}
	if got := sp.ShardFor(types.NewString("alice"), 2); got != 0 {
		t.Errorf("alice routes to %d", got)
	}
	if got := sp.ShardFor(types.NewString("zed"), 2); got != 1 {
		t.Errorf("zed routes to %d", got)
	}
	fp, err := ParseSpec("t=range(x:1.5)")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Bounds[0].Kind() != types.KindFloat {
		t.Fatalf("float bound = %v", fp.Bounds[0])
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, in := range []string{"t=hash(k)", "t=range(k:10,20,30)"} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", sp.String(), err)
		}
		if !strings.EqualFold(again.String(), sp.String()) {
			t.Errorf("round trip %q -> %q", sp.String(), again.String())
		}
	}
}
