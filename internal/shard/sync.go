package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"softdb/internal/client"
	"softdb/internal/expr"
	"softdb/internal/types"
)

// Sync is the constraint-sync protocol, triggered by the raw ROUTER SYNC
// admin statement. For every shard it re-characterizes each partitioned
// (and explicitly tracked) table:
//
//   - reads COUNT(*) plus MIN/MAX per tracked column in one scan,
//   - installs a shard-side soft absolute CHECK backing the observed
//     range (or a CHECK (0 = 1) marker on an empty shard), and
//   - only then installs the registry entry, so the entry is never
//     trusted without a live shard-side tripwire: any later violating
//     write deactivates the CHECK and the deactivation notice rides that
//     write's response back through the router (AbsorbNotices).
//
// Backing constraints are generation-named (router_<table>_<col>_s<i>_g<g>)
// because a re-sync cannot reuse a name — the engine rejects duplicates —
// and must not rely on the previous generation's wider range. Verified
// operator-declared holes install the same way with an inverted CHECK.
func (r *Router) Sync(ctx context.Context) (*client.Result, error) {
	tables := r.syncTables()
	res := &client.Result{}
	for shard := 0; shard < r.n; shard++ {
		for _, t := range tables {
			notices, err := r.syncTable(ctx, shard, t.table, t.cols)
			if err != nil {
				return nil, err
			}
			res.Notices = append(res.Notices, notices...)
		}
		for _, h := range r.cfg.Holes {
			if h.Shard != shard {
				continue
			}
			notice, err := r.syncHole(ctx, h)
			if err != nil {
				return nil, err
			}
			res.Notices = append(res.Notices, notice)
		}
	}
	r.cSyncs.Inc()
	if len(res.Notices) == 0 {
		res.Notices = []string{"sync: nothing to characterize (no partition specs or tracked columns)"}
	}
	return res, nil
}

type syncTarget struct {
	table string
	cols  []string
}

// syncTables merges partition specs and TrackCols into per-table column
// lists, sorted for deterministic sync order.
func (r *Router) syncTables() []syncTarget {
	cols := map[string][]string{}
	add := func(table, col string) {
		table, col = strings.ToLower(table), strings.ToLower(col)
		for _, c := range cols[table] {
			if c == col {
				return
			}
		}
		cols[table] = append(cols[table], col)
	}
	for _, sp := range r.cfg.Specs {
		add(sp.Table, sp.Column)
	}
	for _, tc := range r.cfg.TrackCols {
		if table, col, ok := strings.Cut(tc, "."); ok {
			add(table, col)
		}
	}
	out := make([]syncTarget, 0, len(cols))
	for t, cs := range cols {
		sort.Strings(cs)
		out = append(out, syncTarget{table: t, cols: cs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].table < out[j].table })
	return out
}

// syncTable characterizes one table on one shard. The read and the
// constraint install race with live writes, so a verify rejection
// ("existing rows violate") triggers one re-read-and-retry.
func (r *Router) syncTable(ctx context.Context, shard int, table string, cols []string) ([]string, error) {
	var notices []string
	for attempt := 0; ; attempt++ {
		sel := "SELECT COUNT(*)"
		for _, c := range cols {
			sel += fmt.Sprintf(", MIN(%s), MAX(%s)", c, c)
		}
		sel += " FROM " + table
		res, err := r.adminQuery(ctx, shard, sel)
		if err != nil {
			return nil, fmt.Errorf("shard: sync %s on shard %d: %w", table, shard, err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1+2*len(cols) {
			return nil, fmt.Errorf("shard: sync %s on shard %d: unexpected result shape", table, shard)
		}
		row := res.Rows[0]
		if row[0].Int() == 0 {
			// Empty shard: a CHECK (0 = 1) marker — trivially true over no
			// rows, violated by the first insert — backs an empty-range
			// entry that prunes the shard for any predicate on the table.
			name, err := r.installCheck(ctx, shard, table, "(0 = 1)")
			if err != nil {
				if attempt == 0 && isVerifyReject(err) {
					continue
				}
				return nil, err
			}
			r.reg.Install(Entry{
				Shard: shard, Table: table, Column: cols[0], Kind: KindRange,
				Iv: expr.Interval{ExactEmpty: true}, Constraint: name, Active: true,
			})
			return append(notices, fmt.Sprintf("sync: shard %d: %s empty (%s)", shard, table, name)), nil
		}
		retry := false
		for i, c := range cols {
			lo, hi := row[1+2*i], row[2+2*i]
			if lo.IsNull() || hi.IsNull() {
				continue // all-NULL column: no range to characterize
			}
			check := fmt.Sprintf("(%s >= %s AND %s <= %s)", c, sqlLiteral(lo), c, sqlLiteral(hi))
			name, err := r.installCheck(ctx, shard, table, check)
			if err != nil {
				if attempt == 0 && isVerifyReject(err) {
					// A write moved the range between read and install;
					// re-read the whole table once.
					retry, notices = true, notices[:0]
					break
				}
				return nil, err
			}
			iv := expr.Between(lo, hi, true, true)
			r.reg.Install(Entry{
				Shard: shard, Table: table, Column: c, Kind: KindRange,
				Iv: iv, Constraint: name, Active: true,
			})
			notices = append(notices, fmt.Sprintf("sync: shard %d: %s.%s range %s (%s)", shard, table, c, iv, name))
		}
		if !retry {
			return notices, nil
		}
	}
}

// syncHole verifies an operator-declared hole against the shard and, when
// it holds, installs the inverted CHECK plus the registry entry.
func (r *Router) syncHole(ctx context.Context, h Hole) (string, error) {
	probe := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s >= %s AND %s <= %s",
		h.Table, h.Column, sqlLiteral(h.Lo), h.Column, sqlLiteral(h.Hi))
	res, err := r.adminQuery(ctx, h.Shard, probe)
	if err != nil {
		return "", fmt.Errorf("shard: hole verify %s.%s on shard %d: %w", h.Table, h.Column, h.Shard, err)
	}
	if n := res.Rows[0][0].Int(); n != 0 {
		return fmt.Sprintf("sync: shard %d: hole %s.%s [%s, %s] rejected: %d rows inside",
			h.Shard, h.Table, h.Column, h.Lo, h.Hi, n), nil
	}
	check := fmt.Sprintf("(%s < %s OR %s > %s)", h.Column, sqlLiteral(h.Lo), h.Column, sqlLiteral(h.Hi))
	name, err := r.installCheck(ctx, h.Shard, h.Table, check)
	if err != nil {
		return "", err
	}
	iv := expr.Between(h.Lo, h.Hi, true, true)
	r.reg.Install(Entry{
		Shard: h.Shard, Table: h.Table, Column: h.Column, Kind: KindHole,
		Iv: iv, Constraint: name, Active: true,
	})
	return fmt.Sprintf("sync: shard %d: %s.%s hole %s (%s)", h.Shard, h.Table, h.Column, iv, name), nil
}

// installCheck installs one generation-named soft CHECK on a shard,
// advancing the generation past names a previous router process left
// behind.
func (r *Router) installCheck(ctx context.Context, shard int, table, check string) (string, error) {
	for {
		name := fmt.Sprintf("router_%s_s%d_g%d", table, shard, r.genSeq.Add(1))
		stmt := fmt.Sprintf("ALTER TABLE %s ADD CONSTRAINT %s CHECK %s SOFT", table, name, check)
		if _, err := r.adminQuery(ctx, shard, stmt); err != nil {
			if strings.Contains(err.Error(), "already exists") {
				continue // stale generation from an earlier router; skip past it
			}
			return "", fmt.Errorf("shard: install %s on shard %d: %w", name, shard, err)
		}
		return name, nil
	}
}

func isVerifyReject(err error) bool {
	return err != nil && strings.Contains(err.Error(), "existing rows violate")
}

// sqlLiteral renders a datum as a reparseable SQL literal, mirroring the
// statement printer's constant rules.
func sqlLiteral(d types.Datum) string {
	switch d.Kind() {
	case types.KindDate:
		return fmt.Sprintf("DATE '%s'", d.String())
	case types.KindFloat:
		s := fmt.Sprintf("%g", d.Float())
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return d.String()
	}
}
