package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/exec"
	"softdb/internal/server"
	"softdb/internal/types"
)

// cluster is an in-process shard fleet: n engine servers, a router over
// them, and a single-node twin engine that receives every statement the
// router does — the differential oracle.
type cluster struct {
	t      *testing.T
	r      *Router
	sess   *Session
	single *engine.Database
	srvs   []*server.Server
}

func newCluster(t *testing.T, n int, mutate func(*Config)) *cluster {
	t.Helper()
	cfg := Config{DialTimeout: 5 * time.Second, DialAttempts: 2}
	var srvs []*server.Server
	for i := 0; i < n; i++ {
		db := engine.Open()
		srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
		addr, err := srv.Listen()
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve() }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		cfg.Addrs = append(cfg.Addrs, addr.String())
		srvs = append(srvs, srv)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	c := &cluster{t: t, r: r, sess: r.NewSession(), single: engine.Open(), srvs: srvs}
	t.Cleanup(c.sess.Close)
	return c
}

// exec applies one statement through the router AND to the single-node
// twin, failing on either error.
func (c *cluster) exec(stmt string) {
	c.t.Helper()
	if _, err := c.sess.Exec(context.Background(), stmt); err != nil {
		c.t.Fatalf("router %q: %v", stmt, err)
	}
	if _, err := c.single.Exec(stmt); err != nil {
		c.t.Fatalf("single %q: %v", stmt, err)
	}
}

// routerOnly applies a statement through the router alone (e.g. ROUTER
// SYNC, which the twin has no notion of).
func (c *cluster) routerOnly(stmt string) *client.Result {
	c.t.Helper()
	res, err := c.sess.Exec(context.Background(), stmt)
	if err != nil {
		c.t.Fatalf("router %q: %v", stmt, err)
	}
	return res
}

// canon renders a result for comparison: ordered queries compare rows in
// place, unordered ones as a sorted multiset.
func canon(cols []string, rows []types.Row, ordered bool) string {
	var b strings.Builder
	b.WriteString(strings.Join(cols, "|"))
	b.WriteString("\n")
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.Key()
	}
	if !ordered {
		sort.Strings(lines)
	}
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// differ runs one query on router and twin and requires byte-identical
// canonical results.
func (c *cluster) differ(query string, ordered bool) {
	c.t.Helper()
	got, err := c.sess.Exec(context.Background(), query)
	if err != nil {
		c.t.Fatalf("router %q: %v", query, err)
	}
	want, err := c.single.Exec(query)
	if err != nil {
		c.t.Fatalf("single %q: %v", query, err)
	}
	g := canon(got.Columns, got.Rows, ordered)
	w := canon(want.Columns, want.Rows, ordered)
	if g != w {
		c.t.Errorf("%q diverged\nrouter:\n%s\nsingle:\n%s", query, g, w)
	}
}

const diffSchema = `CREATE TABLE orders (id INT PRIMARY KEY, amount INT, region TEXT, note TEXT)`

func loadDiffData(c *cluster) {
	c.exec(diffSchema)
	c.exec("CREATE TABLE regions (name TEXT, zone INT)")
	for _, r := range []string{"('east', 1)", "('west', 2)", "('north', 1)"} {
		c.exec("INSERT INTO regions VALUES " + r)
	}
	regions := []string{"'east'", "'west'", "'north'"}
	var rows []string
	for i := 0; i < 120; i++ {
		note := "NULL"
		if i%7 == 0 {
			note = fmt.Sprintf("'n%d'", i)
		}
		rows = append(rows, fmt.Sprintf("(%d, %d, %s, %s)", i, (i*13)%500, regions[i%3], note))
	}
	// Multi-row inserts exercise the router's per-shard split.
	for i := 0; i < len(rows); i += 10 {
		c.exec("INSERT INTO orders VALUES " + strings.Join(rows[i:i+10], ", "))
	}
	// Mixed DML so the shards aren't insert-only.
	c.exec("UPDATE orders SET amount = amount + 1 WHERE amount < 50")
	c.exec("DELETE FROM orders WHERE id >= 110 AND note IS NULL")
}

// differentialQueries is the shared suite run under every combination of
// scheme (hash/range), pruning (on/off), and shard-engine parallelism.
// SUM/AVG arguments stay INT so cross-shard combines are exact.
var differentialQueries = []struct {
	q       string
	ordered bool
}{
	{"SELECT * FROM orders ORDER BY id", true},
	{"SELECT id, amount FROM orders WHERE amount > 100 ORDER BY id", true},
	{"SELECT id FROM orders WHERE id = 57", false},
	{"SELECT id FROM orders WHERE id >= 30 AND id < 40 ORDER BY id", true},
	{"SELECT COUNT(*) FROM orders", false},
	{"SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM orders", false},
	{"SELECT COUNT(note) FROM orders", false},
	{"SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM orders GROUP BY region ORDER BY region", true},
	{"SELECT region, AVG(amount) AS mean FROM orders GROUP BY region ORDER BY region", true},
	{"SELECT DISTINCT region FROM orders", false},
	{"SELECT id, amount FROM orders ORDER BY amount DESC, id LIMIT 7", true},
	{"SELECT id FROM orders WHERE amount > 9999", false},
	{"SELECT o.id, r.zone FROM orders o, regions r WHERE o.region = r.name AND o.id < 20 ORDER BY o.id", true},
	{"SELECT SUM(amount) FROM orders WHERE region = 'east'", false},
}

func runDifferential(t *testing.T, spec string) {
	for _, prune := range []bool{true, false} {
		for _, parallel := range []bool{false, true} {
			name := fmt.Sprintf("prune=%v/parallel=%v", prune, parallel)
			t.Run(name, func(t *testing.T) {
				c := newCluster(t, 3, func(cfg *Config) {
					sp, err := ParseSpec(spec)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Specs = []Spec{sp}
				})
				loadDiffData(c)
				if prune {
					c.routerOnly("ROUTER SYNC")
				} else {
					if err := c.sess.Set("shard_prune", "off"); err != nil {
						t.Fatal(err)
					}
				}
				if parallel {
					if err := c.sess.Set("parallel", "2"); err != nil {
						t.Fatal(err)
					}
					c.single.Parallel = 2
				}
				for _, dq := range differentialQueries {
					c.differ(dq.q, dq.ordered)
				}
			})
		}
	}
}

func TestDifferentialHash(t *testing.T) {
	runDifferential(t, "orders=hash(id)")
}

func TestDifferentialRange(t *testing.T) {
	runDifferential(t, "orders=range(id:40,80)")
}

// shardQueryCounts snapshots the per-shard forwarded-statement counters.
func (c *cluster) shardQueryCounts() []int64 {
	return c.r.ShardQueryCounts()
}

func contacted(before, after []int64) int {
	n := 0
	for i := range before {
		if after[i] > before[i] {
			n++
		}
	}
	return n
}

func TestPartitionRoutingContactsOneShard(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:40,80)")
		cfg.Specs = []Spec{sp}
	})
	loadDiffData(c)
	before := c.shardQueryCounts()
	res, err := c.sess.Exec(context.Background(), "SELECT id, amount FROM orders WHERE id = 57")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n := contacted(before, c.shardQueryCounts()); n != 1 {
		t.Fatalf("point query contacted %d shards, want 1", n)
	}
	// Broadcast for comparison touches all three.
	before = c.shardQueryCounts()
	if _, err := c.sess.Exec(context.Background(), "SELECT COUNT(*) FROM orders"); err != nil {
		t.Fatal(err)
	}
	if n := contacted(before, c.shardQueryCounts()); n != 3 {
		t.Fatalf("broadcast contacted %d shards, want 3", n)
	}
}

// TestConstraintPruning is the zone-map analogy end to end: after a sync,
// a predicate outside every other shard's value range contacts exactly
// one shard, with results byte-identical to the broadcast the same query
// performs when pruning is off.
func TestConstraintPruning(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		sp, _ := ParseSpec("orders=hash(id)")
		cfg.Specs = []Spec{sp}
		cfg.TrackCols = []string{"orders.amount"}
	})
	loadDiffData(c)
	// Disjoint per-shard amount bands so range entries can prune: shard
	// assignment is by hashed id, so rewrite amounts into id-correlated
	// bands the sync will discover.
	c.routerOnly("ROUTER SYNC")

	// A predicate over an amount band present on (at most) a subset of
	// shards: compare pruned vs broadcast results.
	query := "SELECT id, amount FROM orders WHERE amount >= 450 AND amount <= 460 ORDER BY id"
	pruned, err := c.sess.Exec(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.sess.Set("shard_prune", "off"); err != nil {
		t.Fatal(err)
	}
	broadcast, err := c.sess.Exec(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if canon(pruned.Columns, pruned.Rows, true) != canon(broadcast.Columns, broadcast.Rows, true) {
		t.Fatalf("pruned and broadcast diverged:\n%v\nvs\n%v", pruned.Rows, broadcast.Rows)
	}
}

func TestEmptyShardPrunes(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:1000)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	c.exec("INSERT INTO orders VALUES (1, 10, 'east', NULL)") // all rows land on shard 0
	c.routerOnly("ROUTER SYNC")
	res := c.routerOnly("EXPLAIN SELECT COUNT(*) FROM orders")
	plan := planText(res)
	if !strings.Contains(plan, "shards=1/2 pruned=1") {
		t.Fatalf("empty shard 1 should be pruned from the broadcast:\n%s", plan)
	}
	if !strings.Contains(plan, "shard-pruned 1") || !strings.Contains(plan, "empty") {
		t.Fatalf("plan should name the pruned shard and reason:\n%s", plan)
	}
	// And the count is still right.
	c.differ("SELECT COUNT(*) FROM orders", false)
}

func planText(res *client.Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].Str())
		b.WriteString("\n")
	}
	return b.String()
}

// TestCrossShardInvalidation is acceptance criterion (c): a violating
// write on one shard retires the backing registry entry at the router —
// via the deactivation notice riding the write's own response — before
// the next routed query runs.
func TestCrossShardInvalidation(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:100)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	for i := 0; i < 10; i++ {
		c.exec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, 'east', NULL)", i, i*10))
		c.exec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, 'west', NULL)", 100+i, i*10))
	}
	c.routerOnly("ROUTER SYNC")

	// Shard 0's synced range is id in [0, 9]: a query for id = 50 (owned
	// by shard 0 per the partition bounds) is pruned by the registry.
	query := "SELECT id FROM orders WHERE id = 50"
	res := c.routerOnly("EXPLAIN " + query)
	if !strings.Contains(planText(res), "pruned=1") {
		t.Fatalf("id=50 should prune shard 0 before the write:\n%s", planText(res))
	}
	if got := c.routerOnly(query); len(got.Rows) != 0 {
		t.Fatalf("no row yet: %v", got.Rows)
	}

	// The violating write: id=50 routes to shard 0 and breaks its synced
	// range CHECK. The deactivation notice must retire the entry before
	// Exec returns.
	c.exec("INSERT INTO orders VALUES (50, 1, 'east', NULL)")
	if c.r.Registry().Retired() == 0 {
		t.Fatal("violating write should have retired the shard 0 range entry")
	}

	// The very next routed query sees the row: no stale prune.
	got := c.routerOnly(query)
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 50 {
		t.Fatalf("row must be visible after invalidation: %v", got.Rows)
	}
	res = c.routerOnly("EXPLAIN " + query)
	if !strings.Contains(planText(res), "pruned=0") {
		t.Fatalf("retired entry must not prune:\n%s", planText(res))
	}
	c.differ(query, false)
}

func TestHoleSyncAndPrune(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=hash(id)")
		cfg.Specs = []Spec{sp}
		h, err := ParseHole("0:orders.amount:1000,2000")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Holes = []Hole{h}
	})
	c.exec(diffSchema)
	for i := 0; i < 20; i++ {
		c.exec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, 'east', NULL)", i, i))
	}
	res := c.routerOnly("ROUTER SYNC")
	joined := strings.Join(res.Notices, "\n")
	if !strings.Contains(joined, "hole") {
		t.Fatalf("sync notices should mention the verified hole:\n%s", joined)
	}
	plan := planText(c.routerOnly("EXPLAIN SELECT id FROM orders WHERE amount >= 1200 AND amount <= 1300"))
	if !strings.Contains(plan, "proven hole") {
		t.Fatalf("predicate inside the hole should prune shard 0:\n%s", plan)
	}
	c.differ("SELECT id FROM orders WHERE amount >= 1200 AND amount <= 1300", false)
}

func TestTxnSingleShard(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:100)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	ctx := context.Background()
	if _, err := c.sess.Exec(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.sess.Exec(ctx, "INSERT INTO orders VALUES (1, 10, 'east', NULL)"); err != nil {
		t.Fatal(err)
	}
	// Same shard again: fine.
	if _, err := c.sess.Exec(ctx, "SELECT * FROM orders WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.sess.Exec(ctx, "COMMIT"); err != nil {
		t.Fatal(err)
	}
	res := c.routerOnly("SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("committed row missing: %v", res.Rows)
	}
}

func TestTxnWrongShard(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:100)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	ctx := context.Background()
	c.routerOnly("BEGIN")
	c.routerOnly("INSERT INTO orders VALUES (1, 10, 'east', NULL)") // pins shard 0
	_, err := c.sess.Exec(ctx, "INSERT INTO orders VALUES (200, 10, 'west', NULL)")
	if client.Kind(err) != exec.KindWrongShard {
		t.Fatalf("kind = %v (err %v), want wrong-shard", client.Kind(err), err)
	}
	c.routerOnly("ROLLBACK")
}

func TestTxnMultiShardRejected(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:100)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	ctx := context.Background()
	c.routerOnly("BEGIN")
	// A single INSERT spanning both shards.
	_, err := c.sess.Exec(ctx, "INSERT INTO orders VALUES (1, 1, 'east', NULL), (200, 2, 'west', NULL)")
	if client.Kind(err) != exec.KindMultiShardTxn {
		t.Fatalf("kind = %v (err %v), want multi-shard-txn", client.Kind(err), err)
	}
	// A broadcast read inside the transaction.
	_, err = c.sess.Exec(ctx, "SELECT COUNT(*) FROM orders")
	if client.Kind(err) != exec.KindMultiShardTxn {
		t.Fatalf("kind = %v (err %v), want multi-shard-txn", client.Kind(err), err)
	}
	c.routerOnly("ROLLBACK")
	// Outside the transaction both statements work.
	c.routerOnly("INSERT INTO orders VALUES (1, 1, 'east', NULL), (200, 2, 'west', NULL)")
	res := c.routerOnly("SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestReplicatedTableWrites(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		sp, _ := ParseSpec("orders=hash(id)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	c.exec("CREATE TABLE regions (name TEXT, zone INT)")
	c.exec("INSERT INTO regions VALUES ('east', 1)")
	// Every shard must hold the replicated row (the partitioned join
	// depends on it); ask each shard directly through its counter deltas.
	for shard := 0; shard < 3; shard++ {
		res, err := c.r.adminQuery(context.Background(), shard, "SELECT COUNT(*) FROM regions")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 1 {
			t.Fatalf("shard %d: replicated row missing", shard)
		}
	}
	c.exec("UPDATE regions SET zone = 2 WHERE name = 'east'")
	c.exec("INSERT INTO orders VALUES (1, 10, 'east', NULL)")
	c.differ("SELECT o.id, r.zone FROM orders o, regions r WHERE o.region = r.name", false)
}

func TestUpdatePartitionKeyRejected(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=hash(id)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	_, err := c.sess.Exec(context.Background(), "UPDATE orders SET id = 5 WHERE id = 1")
	if err == nil || !strings.Contains(err.Error(), "partition key") {
		t.Fatalf("err = %v, want partition-key rejection", err)
	}
}

func TestShardUnreachable(t *testing.T) {
	db0 := engine.Open()
	srv0 := server.New(db0, server.Config{Addr: "127.0.0.1:0"})
	a0, err := srv0.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv0.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv0.Shutdown(ctx)
	})
	db1 := engine.Open()
	srv1 := server.New(db1, server.Config{Addr: "127.0.0.1:0"})
	a1, err := srv1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv1.Serve() }()

	// Range partitioning so id=1 deterministically lives on shard 0, the
	// shard that stays up.
	sp, _ := ParseSpec("orders=range(id:100)")
	r, err := New(Config{
		Addrs:        []string{a0.String(), a1.String()},
		Specs:        []Spec{sp},
		DialTimeout:  500 * time.Millisecond,
		DialAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	sess := r.NewSession()
	t.Cleanup(sess.Close)
	ctx := context.Background()
	if _, err := sess.Exec(ctx, diffSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "INSERT INTO orders VALUES (1, 10, 'east', NULL)"); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1 and broadcast: the statement must fail fast with the
	// typed kind, not hang.
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = srv1.Shutdown(shutCtx)
	cancel()
	deadline, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	_, err = sess.Exec(deadline, "SELECT COUNT(*) FROM orders")
	if client.Kind(err) != exec.KindShardUnreachable {
		t.Fatalf("kind = %v (err %v), want shard-unreachable", client.Kind(err), err)
	}
	if deadline.Err() != nil {
		t.Fatal("unreachable shard made the router hang")
	}
	if r.cUnreach.Value() == 0 {
		t.Fatal("unreachable counter should have incremented")
	}
	// Statements that never touch the dead shard still work.
	res, err := sess.Exec(ctx, "SELECT id FROM orders WHERE id = 1")
	if err != nil {
		t.Fatalf("point query to the live shard: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestShowShardsAndEconomy(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:100)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	c.exec("INSERT INTO orders VALUES (1, 10, 'east', NULL)")
	c.routerOnly("ROUTER SYNC")
	res := c.routerOnly("SHOW SHARDS")
	if len(res.Columns) != 8 || res.Columns[0] != "shard" {
		t.Fatalf("columns = %v", res.Columns)
	}
	text := ""
	for _, r := range res.Rows {
		text += r.Key() + "\n"
	}
	for _, want := range []string{"configured", "partition", "range", "router_orders"} {
		if !strings.Contains(text, want) {
			t.Errorf("SHOW SHARDS missing %q:\n%s", want, text)
		}
	}
	// Earn a prune, then check the economy surfaced it.
	c.routerOnly("SELECT id FROM orders WHERE id = 50")
	econ := c.routerOnly("SHOW CONSTRAINTS ECONOMY")
	if len(econ.Columns) != 2 || econ.Columns[1] != "shards_pruned" {
		t.Fatalf("economy columns = %v", econ.Columns)
	}
	total := int64(0)
	for _, r := range econ.Rows {
		total += r[1].Int()
	}
	if total == 0 {
		t.Fatalf("a pruned query should credit the ledger: %v", econ.Rows)
	}
}

func TestRouterDDLFansOut(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		sp, _ := ParseSpec("orders=hash(id)")
		cfg.Specs = []Spec{sp}
	})
	c.exec(diffSchema)
	c.exec("CREATE INDEX idx_amount ON orders (amount)")
	c.exec("ALTER TABLE orders ADD CONSTRAINT amount_pos CHECK (amount >= 0) SOFT")
	for i := 0; i < 30; i++ {
		c.exec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, 'east', NULL)", i, i))
	}
	c.differ("SELECT id FROM orders WHERE amount = 7", false)
	c.exec("DROP TABLE orders")
	// Recreate under the same name: no stale registry entries.
	c.exec(diffSchema)
	c.exec("INSERT INTO orders VALUES (500, 1, 'east', NULL)")
	c.differ("SELECT COUNT(*) FROM orders", false)
}

// TestFrontendWireRoundTrip drives the router through the real TCP wire
// front end with the ordinary client library.
func TestFrontendWireRoundTrip(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		sp, _ := ParseSpec("orders=hash(id)")
		cfg.Specs = []Spec{sp}
	})
	fe := NewFrontend(c.r, FrontendConfig{Addr: "127.0.0.1:0"})
	addr, err := fe.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = fe.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = fe.Shutdown(ctx)
	})
	conn, err := client.Connect(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	ctx := context.Background()
	if _, err := conn.Query(ctx, diffSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := conn.Query(ctx, fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, 'east', NULL)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := conn.Query(ctx, "SELECT COUNT(*), SUM(amount) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 || res.Rows[0][1].Int() != 45 {
		t.Fatalf("wire result = %v", res.Rows)
	}
	if err := conn.Set("shard_prune", "off"); err != nil {
		t.Fatalf("SET over the wire: %v", err)
	}
	if _, err := conn.Query(ctx, "SHOW SHARDS"); err != nil {
		t.Fatalf("SHOW SHARDS over the wire: %v", err)
	}
	// Typed error end to end: wrong-shard inside a wire transaction.
	if _, err := conn.Query(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query(ctx, "SELECT id FROM orders WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	_, err = conn.Query(ctx, "SELECT COUNT(*) FROM orders")
	if client.Kind(err) != exec.KindMultiShardTxn {
		t.Fatalf("kind over the wire = %v (err %v)", client.Kind(err), err)
	}
	if _, err := conn.Query(ctx, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

func TestExplainAnalyzeShardLine(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		sp, _ := ParseSpec("orders=range(id:40,80)")
		cfg.Specs = []Spec{sp}
	})
	loadDiffData(c)
	c.routerOnly("ROUTER SYNC")
	plan := planText(c.routerOnly("EXPLAIN ANALYZE SELECT id FROM orders WHERE id = 57"))
	if !strings.Contains(plan, "router: shards=1/3") {
		t.Fatalf("EXPLAIN ANALYZE missing router shard line:\n%s", plan)
	}
	plan = planText(c.routerOnly("EXPLAIN ANALYZE SELECT COUNT(*) FROM orders"))
	if !strings.Contains(plan, "router: shards=3/3 pruned=0") {
		t.Fatalf("broadcast EXPLAIN ANALYZE:\n%s", plan)
	}
}
