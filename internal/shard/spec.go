// Package shard is softdb's scale-out subsystem: a router that fronts N
// independent engine shards over the ordinary wire protocol and client
// library. Tables are hash- or range-partitioned by one column; DDL fans
// to every shard, DML routes by partition key, scans fan out and merge,
// and aggregates push down as per-shard partials combined at the router.
//
// The paper-native twist is the constraint registry (registry.go): the
// router keeps each shard's soft data characterizations — value ranges
// and proven holes, each backed by a shard-side soft absolute constraint
// (ASC) — and uses them to prune whole shards from a query's fan-out
// exactly the way zone maps prune heap pages: a predicate that falls
// outside a shard's value range, or inside its proven hole, never
// crosses the network. Violating writes retire the backing ASC on the
// shard, and the deactivation notice (the PR 5 mechanism) rides the
// write's own response back through the router, which retires the
// registry entry before the write returns — the next routed query can
// no longer use it.
package shard

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/types"
)

// Scheme is how a table's rows map to shards.
type Scheme int

const (
	// SchemeHash routes each row by an FNV-64a hash of its partition-key
	// value modulo the shard count.
	SchemeHash Scheme = iota
	// SchemeRange routes by sorted split points: with bounds b0 < b1 < ...
	// shard 0 owns (-inf, b0), shard i owns [b(i-1), bi), and the last
	// shard owns [blast, +inf).
	SchemeRange
)

func (s Scheme) String() string {
	if s == SchemeRange {
		return "range"
	}
	return "hash"
}

// Spec declares one table's partitioning. Tables without a Spec are
// replicated: DDL and writes fan to every shard, reads route to one.
type Spec struct {
	Table  string
	Column string
	Scheme Scheme
	// Bounds are SchemeRange's split points, ascending. A router serving
	// n shards uses the first n-1 bounds; fewer bounds than n-1 leaves
	// the tail shards owning nothing, which is rejected at config time.
	Bounds []types.Datum
}

// ParseSpec parses a -partition flag value:
//
//	sales=hash(id)
//	sales=range(id:1000,2000,3000)
//
// Range bounds parse as INT, then FLOAT, then bare (or single-quoted)
// string literals.
func ParseSpec(s string) (Spec, error) {
	table, rest, ok := strings.Cut(s, "=")
	if !ok {
		return Spec{}, fmt.Errorf("shard: partition spec %q: want table=scheme(column...)", s)
	}
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return Spec{}, fmt.Errorf("shard: partition spec %q: want scheme(column...)", s)
	}
	scheme := strings.ToLower(strings.TrimSpace(rest[:open]))
	inner := rest[open+1 : len(rest)-1]
	sp := Spec{Table: strings.ToLower(strings.TrimSpace(table))}
	switch scheme {
	case "hash":
		sp.Scheme = SchemeHash
		sp.Column = strings.ToLower(strings.TrimSpace(inner))
		if sp.Column == "" {
			return Spec{}, fmt.Errorf("shard: partition spec %q: empty column", s)
		}
	case "range":
		sp.Scheme = SchemeRange
		col, bounds, ok := strings.Cut(inner, ":")
		if !ok {
			return Spec{}, fmt.Errorf("shard: partition spec %q: want range(column:b1,b2,...)", s)
		}
		sp.Column = strings.ToLower(strings.TrimSpace(col))
		for _, b := range strings.Split(bounds, ",") {
			d, err := parseBound(strings.TrimSpace(b))
			if err != nil {
				return Spec{}, fmt.Errorf("shard: partition spec %q: %w", s, err)
			}
			sp.Bounds = append(sp.Bounds, d)
		}
		for i := 1; i < len(sp.Bounds); i++ {
			if sp.Bounds[i-1].Compare(sp.Bounds[i]) >= 0 {
				return Spec{}, fmt.Errorf("shard: partition spec %q: bounds must be strictly ascending", s)
			}
		}
		if len(sp.Bounds) == 0 {
			return Spec{}, fmt.Errorf("shard: partition spec %q: range needs at least one bound", s)
		}
	default:
		return Spec{}, fmt.Errorf("shard: partition spec %q: unknown scheme %q", s, scheme)
	}
	return sp, nil
}

func parseBound(s string) (types.Datum, error) {
	if s == "" {
		return types.Null, fmt.Errorf("empty range bound")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return types.NewInt(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return types.NewFloat(f), nil
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		s = s[1 : len(s)-1]
	}
	return types.NewString(s), nil
}

// String renders the spec in the -partition flag grammar.
func (sp Spec) String() string {
	if sp.Scheme == SchemeHash {
		return fmt.Sprintf("%s=hash(%s)", sp.Table, sp.Column)
	}
	parts := make([]string, len(sp.Bounds))
	for i, b := range sp.Bounds {
		parts[i] = b.String()
	}
	return fmt.Sprintf("%s=range(%s:%s)", sp.Table, sp.Column, strings.Join(parts, ","))
}

// Validate checks the spec can drive n shards.
func (sp Spec) Validate(n int) error {
	if sp.Scheme == SchemeRange && len(sp.Bounds) != n-1 {
		return fmt.Errorf("shard: table %s: range partitioning over %d shards needs exactly %d bounds, have %d",
			sp.Table, n, n-1, len(sp.Bounds))
	}
	return nil
}

// ShardFor routes one partition-key value to its owning shard among n.
// NULL keys route deterministically to shard 0.
func (sp Spec) ShardFor(v types.Datum, n int) int {
	if n <= 1 {
		return 0
	}
	if v.IsNull() {
		return 0
	}
	if sp.Scheme == SchemeHash {
		h := fnv.New64a()
		h.Write([]byte{byte(v.Kind())})
		h.Write([]byte(v.String()))
		return int(h.Sum64() % uint64(n))
	}
	// Range: count bounds <= v; that index is the owning shard.
	i := 0
	for i < len(sp.Bounds) && i < n-1 && sp.Bounds[i].Compare(v) <= 0 {
		i++
	}
	return i
}

// OwnedInterval is the value interval shard i is responsible for under
// range partitioning; hash partitioning owns an unbounded interval on
// every shard (any value can land anywhere).
func (sp Spec) OwnedInterval(i, n int) expr.Interval {
	if sp.Scheme == SchemeHash || n <= 1 {
		return expr.Unbounded()
	}
	last := min(len(sp.Bounds), n-1)
	switch {
	case i <= 0:
		return expr.AtMost(sp.Bounds[0], false)
	case i >= last:
		return expr.AtLeast(sp.Bounds[last-1], true)
	default:
		return expr.Between(sp.Bounds[i-1], sp.Bounds[i], true, false)
	}
}

// CandidateShards returns the shards that can hold rows whose
// partition-key value lies in iv: a pinned value routes exactly (hash or
// range), a range predicate narrows range partitioning via the owned
// intervals, and anything else is every shard.
func (sp Spec) CandidateShards(iv expr.Interval, n int) []int {
	if iv.Empty() {
		return nil
	}
	if iv.EqualityConstant != nil {
		return []int{sp.ShardFor(*iv.EqualityConstant, n)}
	}
	if sp.Scheme == SchemeHash || iv.IsUnbounded() {
		return allShards(n)
	}
	var out []int
	for i := 0; i < n; i++ {
		if !sp.OwnedInterval(i, n).Disjoint(iv) {
			out = append(out, i)
		}
	}
	return out
}

func allShards(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
