package shard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softdb/internal/client"
	"softdb/internal/exec"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/sql"
	"softdb/internal/types"
	"softdb/internal/wire"
)

// Metric families the router exports on its own registry.
const (
	mConnections     = "softdb_router_connections"
	mRequests        = "softdb_router_requests_total"
	mShardQueries    = "softdb_router_shard_queries_total"
	mShardsContacted = "softdb_router_shards_contacted_total"
	mShardsPruned    = "softdb_router_shards_pruned_total"
	mUnreachable     = "softdb_router_shard_unreachable_total"
	mRetired         = "softdb_router_constraints_retired_total"
	mSyncs           = "softdb_router_syncs_total"
	mReqDuration     = "softdb_router_request_duration_seconds"
)

// Config declares a router's topology and behavior.
type Config struct {
	// Addrs are the shard servers, in shard-ID order.
	Addrs []string
	// Specs partition tables across the shards; tables without a spec are
	// replicated (DDL and writes fan everywhere, reads route to one shard).
	Specs []Spec
	// Holes are operator-declared value gaps the next ROUTER SYNC verifies
	// and installs as prunable, ASC-backed registry entries.
	Holes []Hole
	// TrackCols lists extra "table.column" pairs whose per-shard value
	// ranges ROUTER SYNC characterizes beyond each table's partition key.
	TrackCols []string
	// NoPrune disables registry-based shard pruning globally (partition
	// routing still applies); per-session SET shard_prune overrides.
	NoPrune bool
	// DialTimeout/DialAttempts tune the shard connection pool's backoff
	// dialer; zero means the client package defaults.
	DialTimeout  time.Duration
	DialAttempts int
	// Logger, when non-nil, receives routing lifecycle logs.
	Logger *slog.Logger
}

// Hole is an operator-declared value gap on one shard: no row of Table
// has Column inside [Lo, Hi]. ROUTER SYNC verifies the claim against the
// shard before trusting it.
type Hole struct {
	Shard  int
	Table  string
	Column string
	Lo, Hi types.Datum
}

// ParseHole parses a -hole flag value: shard:table.column:lo,hi.
func ParseHole(s string) (Hole, error) {
	shardPart, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Hole{}, fmt.Errorf("shard: hole %q: want shard:table.column:lo,hi", s)
	}
	id, err := strconv.Atoi(strings.TrimSpace(shardPart))
	if err != nil {
		return Hole{}, fmt.Errorf("shard: hole %q: bad shard id: %w", s, err)
	}
	colPart, boundsPart, ok := strings.Cut(rest, ":")
	if !ok {
		return Hole{}, fmt.Errorf("shard: hole %q: want shard:table.column:lo,hi", s)
	}
	table, column, ok := strings.Cut(colPart, ".")
	if !ok {
		return Hole{}, fmt.Errorf("shard: hole %q: want table.column", s)
	}
	loPart, hiPart, ok := strings.Cut(boundsPart, ",")
	if !ok {
		return Hole{}, fmt.Errorf("shard: hole %q: want lo,hi bounds", s)
	}
	lo, err := parseBound(strings.TrimSpace(loPart))
	if err != nil {
		return Hole{}, fmt.Errorf("shard: hole %q: %w", s, err)
	}
	hi, err := parseBound(strings.TrimSpace(hiPart))
	if err != nil {
		return Hole{}, fmt.Errorf("shard: hole %q: %w", s, err)
	}
	if lo.Compare(hi) > 0 {
		return Hole{}, fmt.Errorf("shard: hole %q: lo > hi", s)
	}
	return Hole{Shard: id, Table: strings.ToLower(table), Column: strings.ToLower(column), Lo: lo, Hi: hi}, nil
}

// Router fronts N engine shards: it routes writes by partition key, fans
// reads out, merges results, and prunes shards through the constraint
// registry. Construct with New, serve sessions with NewSession (or the
// wire front end in frontend.go).
type Router struct {
	cfg   Config
	n     int
	specs map[string]Spec // by lower-case table
	reg   *Registry

	metrics *obs.Registry
	econ    *obs.Economy

	gConns      *obs.Gauge
	cRequests   *obs.Counter
	cContacted  *obs.Counter
	cUnreach    *obs.Counter
	cRetired    *obs.Counter
	cSyncs      *obs.Counter
	hDuration   *obs.Histogram
	cShardQuery []*obs.Counter
	cPruned     map[string]*obs.Counter

	// admin is the per-shard connection pool ROUTER SYNC and schema
	// discovery use, separate from session connections so a sync never
	// interleaves with a session's transaction.
	adminMu sync.Mutex
	admin   []*client.Conn

	schemaMu sync.Mutex
	schemas  map[string][]string

	genSeq  atomic.Int64
	connSeq atomic.Int64
}

// New validates cfg and builds a Router. It does not contact the shards;
// connections are dialed lazily.
func New(cfg Config) (*Router, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, errors.New("shard: router needs at least one shard address")
	}
	specs := map[string]Spec{}
	for _, sp := range cfg.Specs {
		if err := sp.Validate(n); err != nil {
			return nil, err
		}
		if _, dup := specs[sp.Table]; dup {
			return nil, fmt.Errorf("shard: duplicate partition spec for table %s", sp.Table)
		}
		specs[sp.Table] = sp
	}
	for _, h := range cfg.Holes {
		if h.Shard < 0 || h.Shard >= n {
			return nil, fmt.Errorf("shard: hole on shard %d: only %d shards configured", h.Shard, n)
		}
	}
	reg := obs.NewRegistry()
	reg.Describe(mConnections, "gauge", "Client sessions currently served by the router.")
	reg.Describe(mRequests, "counter", "Statements the router dispatched.")
	reg.Describe(mShardQueries, "counter", "Statements forwarded per shard.")
	reg.Describe(mShardsContacted, "counter", "Shard round-trips across all statements.")
	reg.Describe(mShardsPruned, "counter", "Shards skipped by the constraint registry, by reason.")
	reg.Describe(mUnreachable, "counter", "Statements that failed because a shard was unreachable.")
	reg.Describe(mRetired, "counter", "Registry entries retired by shard deactivation notices.")
	reg.Describe(mSyncs, "counter", "ROUTER SYNC passes completed.")
	reg.Describe(mReqDuration, "histogram", "Router request latency in seconds.")
	r := &Router{
		cfg:        cfg,
		n:          n,
		specs:      specs,
		reg:        NewRegistry(),
		metrics:    reg,
		econ:       obs.NewEconomy(reg),
		gConns:     reg.Gauge(mConnections),
		cRequests:  reg.Counter(mRequests),
		cContacted: reg.Counter(mShardsContacted),
		cUnreach:   reg.Counter(mUnreachable),
		cRetired:   reg.Counter(mRetired),
		cSyncs:     reg.Counter(mSyncs),
		hDuration:  reg.Histogram(mReqDuration, obs.DefLatencyBuckets),
		cPruned: map[string]*obs.Counter{
			"range": reg.Counter(mShardsPruned, "reason", "range"),
			"hole":  reg.Counter(mShardsPruned, "reason", "hole"),
			"empty": reg.Counter(mShardsPruned, "reason", "empty"),
		},
		admin:   make([]*client.Conn, n),
		schemas: map[string][]string{},
	}
	for i := range cfg.Addrs {
		r.cShardQuery = append(r.cShardQuery, reg.Counter(mShardQueries, "shard", strconv.Itoa(i)))
	}
	return r, nil
}

// Metrics returns the router's metric registry (served on -debug-addr).
func (r *Router) Metrics() *obs.Registry { return r.metrics }

// Registry returns the shard constraint registry.
func (r *Router) Registry() *Registry { return r.reg }

// Shards returns the number of shards the router fronts.
func (r *Router) Shards() int { return r.n }

// ShardQueryCounts snapshots the per-shard forwarded-statement counters;
// deltas between snapshots tell a caller how many shards a statement
// actually contacted (the benchmark and experiment probes use this).
func (r *Router) ShardQueryCounts() []int64 {
	out := make([]int64, r.n)
	for i, c := range r.cShardQuery {
		out[i] = c.Value()
	}
	return out
}

func (r *Router) logf(level slog.Level, msg string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Log(context.Background(), level, msg, args...)
	}
}

func (r *Router) dialer(shard int) client.Dialer {
	return client.Dialer{
		Addr:           r.cfg.Addrs[shard],
		ConnectTimeout: r.cfg.DialTimeout,
		MaxAttempts:    r.cfg.DialAttempts,
	}
}

// unreachable wraps a transport-level shard failure into the typed kind
// clients classify on.
func (r *Router) unreachable(shard int, err error) error {
	r.cUnreach.Inc()
	return &exec.QueryError{
		Op:   fmt.Sprintf("router.shard-%d", shard),
		Kind: exec.KindShardUnreachable,
		Err:  fmt.Errorf("shard %d (%s): %w", shard, r.cfg.Addrs[shard], err),
	}
}

// adminQuery runs one statement on a shard over the router-owned admin
// pool, redialing a broken connection once.
func (r *Router) adminQuery(ctx context.Context, shard int, stmt string) (*client.Result, error) {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	for attempt := 0; ; attempt++ {
		c := r.admin[shard]
		if c == nil {
			var err error
			c, err = r.dialer(shard).Dial(ctx)
			if err != nil {
				return nil, r.unreachable(shard, err)
			}
			r.admin[shard] = c
		}
		res, err := c.Query(ctx, stmt)
		if err != nil {
			var we *wire.Error
			if errors.As(err, &we) {
				r.absorb(res, we)
				return nil, we
			}
			_ = c.Close()
			r.admin[shard] = nil
			if attempt == 0 {
				continue
			}
			return nil, r.unreachable(shard, err)
		}
		r.cShardQuery[shard].Inc()
		r.absorb(res, nil)
		return res, nil
	}
}

// absorb retires registry entries named in a shard response's
// deactivation notices. It runs on every shard response, success or
// error, before that response is surfaced — the invalidation therefore
// lands at the router before the triggering statement returns to the
// client, and no later routed query can use the dead entry.
func (r *Router) absorb(res *client.Result, _ *wire.Error) {
	if res == nil {
		return
	}
	if n := r.reg.AbsorbNotices(res.Notices); n > 0 {
		r.cRetired.Add(int64(n))
		r.logf(slog.LevelInfo, "registry entries retired by shard notice", "count", n)
	}
}

// schemaColumns resolves (and caches) a table's column names via a
// zero-row scan on shard 0.
func (r *Router) schemaColumns(ctx context.Context, table string) ([]string, error) {
	key := strings.ToLower(table)
	r.schemaMu.Lock()
	cols, ok := r.schemas[key]
	r.schemaMu.Unlock()
	if ok {
		return cols, nil
	}
	res, err := r.adminQuery(ctx, 0, fmt.Sprintf("SELECT * FROM %s LIMIT 0", key))
	if err != nil {
		return nil, err
	}
	r.schemaMu.Lock()
	r.schemas[key] = res.Columns
	r.schemaMu.Unlock()
	return res.Columns, nil
}

func (r *Router) invalidateSchema() {
	r.schemaMu.Lock()
	r.schemas = map[string][]string{}
	r.schemaMu.Unlock()
}

// Close tears down the admin pool.
func (r *Router) Close() {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	for i, c := range r.admin {
		if c != nil {
			_ = c.Close()
			r.admin[i] = nil
		}
	}
}

// --- sessions ---

type txnState int

const (
	txnNone txnState = iota
	// txnPending: BEGIN was received but no statement has pinned a shard
	// yet; the BEGIN is forwarded lazily with the pinning statement.
	txnPending
	txnPinned
)

// Session is one client's routing state: its per-shard connections, its
// forwarded settings, and its transaction pin.
type Session struct {
	r     *Router
	label string

	mu       sync.Mutex
	conns    []*client.Conn
	settings map[string]string
	prune    bool
	txn      txnState
	pinned   int
	closed   bool
}

// NewSession opens a routing session.
func (r *Router) NewSession() *Session {
	r.gConns.Add(1)
	return &Session{
		r:        r,
		label:    fmt.Sprintf("route-%d", r.connSeq.Add(1)),
		conns:    make([]*client.Conn, r.n),
		settings: map[string]string{},
		prune:    !r.cfg.NoPrune,
	}
}

// Label returns the session's router-assigned label.
func (s *Session) Label() string { return s.label }

// Close releases the session's shard connections, rolling back any open
// transaction server-side (the pinned shard sees its connection drop).
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, c := range s.conns {
		if c != nil {
			_ = c.Close()
			s.conns[i] = nil
		}
	}
	s.r.gConns.Add(-1)
}

// Set handles one session setting: shard_prune toggles registry pruning
// at the router; everything else is stored and forwarded to every shard
// connection (current and future), so e.g. parallel_degree tunes the
// shard engines.
func (s *Session) Set(name, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if strings.EqualFold(name, "shard_prune") {
		switch strings.ToLower(value) {
		case "on", "true", "1":
			s.prune = true
		case "off", "false", "0":
			s.prune = false
		default:
			return fmt.Errorf("shard: shard_prune wants on/off, got %q", value)
		}
		return nil
	}
	s.settings[name] = value
	for _, c := range s.conns {
		if c != nil {
			if err := c.Set(name, value); err != nil {
				return err
			}
		}
	}
	return nil
}

// conn returns the session's connection to a shard, dialing and replaying
// forwarded settings on first use.
func (s *Session) conn(ctx context.Context, shard int) (*client.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.conns[shard]; c != nil {
		return c, nil
	}
	c, err := s.r.dialer(shard).Dial(ctx)
	if err != nil {
		return nil, s.r.unreachable(shard, err)
	}
	for name, value := range s.settings {
		if err := c.Set(name, value); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	s.conns[shard] = c
	return c, nil
}

func (s *Session) dropConn(shard int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.conns[shard]; c != nil {
		_ = c.Close()
		s.conns[shard] = nil
	}
}

// query forwards one statement to a shard on the session's connection,
// absorbing deactivation notices from the response.
func (s *Session) query(ctx context.Context, shard int, stmt string) (*client.Result, error) {
	c, err := s.conn(ctx, shard)
	if err != nil {
		return nil, err
	}
	res, err := c.Query(ctx, stmt)
	if err != nil {
		var we *wire.Error
		if errors.As(err, &we) {
			s.r.absorb(res, we)
			return nil, we // shard-classified; stream still in sync
		}
		s.dropConn(shard)
		return nil, s.r.unreachable(shard, err)
	}
	s.r.cShardQuery[shard].Inc()
	s.r.cContacted.Inc()
	s.r.absorb(res, nil)
	return res, nil
}

// fanOut runs one statement on several shards concurrently (each shard
// has its own connection) and returns results in shard order.
func (s *Session) fanOut(ctx context.Context, shards []int, stmt string) ([]*client.Result, error) {
	if len(shards) == 1 {
		res, err := s.query(ctx, shards[0], stmt)
		if err != nil {
			return nil, err
		}
		return []*client.Result{res}, nil
	}
	// Dial serially (the session lock guards the conn table), then query
	// concurrently.
	for _, id := range shards {
		if _, err := s.conn(ctx, id); err != nil {
			return nil, err
		}
	}
	results := make([]*client.Result, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, id := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.query(ctx, id, stmt)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// --- statement dispatch ---

// Exec routes one statement. This is the router's entry point: the wire
// front end calls it per FrameQuery, and tests call it directly.
func (s *Session) Exec(ctx context.Context, text string) (*client.Result, error) {
	s.r.cRequests.Inc()
	start := time.Now()
	res, err := s.exec(ctx, text)
	s.r.hDuration.Observe(time.Since(start).Seconds())
	return res, err
}

func (s *Session) exec(ctx context.Context, text string) (*client.Result, error) {
	trimmed := strings.TrimSuffix(strings.TrimSpace(text), ";")
	if strings.EqualFold(trimmed, "ROUTER SYNC") {
		return s.r.Sync(ctx)
	}
	stmt, err := sql.Parse(trimmed)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.Show:
		if st.Shards {
			return s.showShards(), nil
		}
		return s.showEconomy(), nil
	case *sql.Begin:
		return s.begin()
	case *sql.Commit, *sql.Rollback:
		return s.finishTxn(ctx, trimmed)
	case *sql.Select:
		return s.execSelect(ctx, st, trimmed)
	case *sql.Insert:
		return s.execInsert(ctx, st)
	case *sql.Update:
		if err := s.checkPartitionKeyUpdate(st); err != nil {
			return nil, err
		}
		return s.execWhereDML(ctx, st.Table, st.Where, trimmed)
	case *sql.Delete:
		return s.execWhereDML(ctx, st.Table, st.Where, trimmed)
	case *sql.Explain:
		return s.execExplain(ctx, st, trimmed)
	case *sql.CreateTable:
		s.r.reg.DropTable(st.Name)
		return s.execDDL(ctx, trimmed)
	case *sql.DropTable:
		s.r.reg.DropTable(st.Name)
		return s.execDDL(ctx, trimmed)
	case *sql.CreateIndex, *sql.CreateSummary, *sql.CreateView, *sql.AlterTableAdd, *sql.Analyze:
		return s.execDDL(ctx, trimmed)
	default:
		return nil, fmt.Errorf("shard: statement not routable: %T", stmt)
	}
}

func (s *Session) begin() (*client.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txn != txnNone {
		return nil, errors.New("shard: transaction already open")
	}
	s.txn = txnPending
	return &client.Result{Notices: []string{"transaction open: will pin to the first shard a statement routes to"}}, nil
}

func (s *Session) finishTxn(ctx context.Context, stmt string) (*client.Result, error) {
	s.mu.Lock()
	state, pinned := s.txn, s.pinned
	s.txn, s.pinned = txnNone, 0
	s.mu.Unlock()
	switch state {
	case txnPinned:
		return s.query(ctx, pinned, stmt)
	case txnPending:
		return &client.Result{Notices: []string{"transaction closed before any statement pinned a shard"}}, nil
	default:
		return &client.Result{Notices: []string{"no transaction open"}}, nil
	}
}

// pinTxn resolves a statement's shard under the session transaction: a
// pending transaction pins to the statement's shard (forwarding the
// deferred BEGIN), a pinned one rejects statements routed elsewhere.
// ok=false means no transaction is open.
func (s *Session) pinTxn(ctx context.Context, shard int) (inTxn bool, err error) {
	s.mu.Lock()
	state, pinned := s.txn, s.pinned
	s.mu.Unlock()
	switch state {
	case txnNone:
		return false, nil
	case txnPending:
		if _, err := s.query(ctx, shard, "BEGIN"); err != nil {
			return true, err
		}
		s.mu.Lock()
		s.txn, s.pinned = txnPinned, shard
		s.mu.Unlock()
		return true, nil
	default:
		if pinned != shard {
			return true, &exec.QueryError{
				Op:   "router.txn",
				Kind: exec.KindWrongShard,
				Err:  fmt.Errorf("transaction is pinned to shard %d; statement routes to shard %d", pinned, shard),
			}
		}
		return true, nil
	}
}

// inTxn reports whether a session transaction is open (pending or pinned).
func (s *Session) inTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn != txnNone
}

func multiShardErr(what string) error {
	return &exec.QueryError{
		Op:   "router.txn",
		Kind: exec.KindMultiShardTxn,
		Err:  fmt.Errorf("%s would touch more than one shard; the router does not fake cross-shard atomicity", what),
	}
}

// execDDL fans a schema statement to every shard. Inside a transaction
// DDL is rejected (it is inherently multi-shard).
func (s *Session) execDDL(ctx context.Context, stmt string) (*client.Result, error) {
	defer s.r.invalidateSchema()
	if s.inTxn() && s.r.n > 1 {
		return nil, multiShardErr("DDL inside a transaction")
	}
	if s.inTxn() {
		if inTxn, err := s.pinTxn(ctx, 0); inTxn && err != nil {
			return nil, err
		}
		return s.query(ctx, 0, stmt)
	}
	results, err := s.fanOut(ctx, allShards(s.r.n), stmt)
	if err != nil {
		return nil, err
	}
	// Shards are schema-identical, so shard 0's response speaks for all;
	// notices beyond shard 0's would repeat n times.
	return results[0], nil
}

// execInsert routes INSERT rows to their partition-owning shards. A
// multi-row insert splits into one statement per owning shard.
func (s *Session) execInsert(ctx context.Context, ins *sql.Insert) (*client.Result, error) {
	spec, partitioned := s.r.specs[strings.ToLower(ins.Table)]
	if !partitioned {
		// Replicated table: the write must land on every shard.
		if s.inTxn() && s.r.n > 1 {
			return nil, multiShardErr(fmt.Sprintf("INSERT into replicated table %s inside a transaction", ins.Table))
		}
		stmt := sql.Print(ins)
		if s.inTxn() {
			if _, err := s.pinTxn(ctx, 0); err != nil {
				return nil, err
			}
			return s.query(ctx, 0, stmt)
		}
		results, err := s.fanOut(ctx, allShards(s.r.n), stmt)
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}
	keyIdx, err := s.partitionKeyIndex(ctx, ins, spec)
	if err != nil {
		return nil, err
	}
	byShard := map[int][][]expr.Expr{}
	var shardOrder []int
	for _, row := range ins.Rows {
		v := types.Null
		if keyIdx >= 0 && keyIdx < len(row) {
			v, err = constDatum(row[keyIdx])
			if err != nil {
				return nil, fmt.Errorf("shard: partition key of %s must be a constant: %w", ins.Table, err)
			}
		}
		id := spec.ShardFor(v, s.r.n)
		if _, seen := byShard[id]; !seen {
			shardOrder = append(shardOrder, id)
		}
		byShard[id] = append(byShard[id], row)
	}
	sort.Ints(shardOrder)
	if s.inTxn() {
		if len(shardOrder) > 1 {
			return nil, multiShardErr(fmt.Sprintf("INSERT into %s spanning shards %v", ins.Table, shardOrder))
		}
		if inTxn, err := s.pinTxn(ctx, shardOrder[0]); inTxn && err != nil {
			return nil, err
		}
	}
	out := &client.Result{}
	for _, id := range shardOrder {
		sub := &sql.Insert{Table: ins.Table, Columns: ins.Columns, Rows: byShard[id]}
		res, err := s.query(ctx, id, sql.Print(sub))
		if err != nil {
			return nil, err
		}
		out.RowsAffected += res.RowsAffected
		out.Notices = append(out.Notices, res.Notices...)
	}
	return out, nil
}

// partitionKeyIndex finds the partition column's position among an
// INSERT's value lists, resolving positional inserts through the schema.
// -1 means the insert never assigns the key (rows route as NULL).
func (s *Session) partitionKeyIndex(ctx context.Context, ins *sql.Insert, spec Spec) (int, error) {
	cols := ins.Columns
	if len(cols) == 0 {
		var err error
		cols, err = s.r.schemaColumns(ctx, ins.Table)
		if err != nil {
			return -1, err
		}
	}
	for i, c := range cols {
		if strings.EqualFold(c, spec.Column) {
			return i, nil
		}
	}
	return -1, nil
}

// constDatum evaluates a row-independent expression.
func constDatum(e expr.Expr) (d types.Datum, err error) {
	defer func() {
		if recover() != nil {
			d, err = types.Null, errors.New("expression references a column")
		}
	}()
	return e.Eval(nil)
}

// checkPartitionKeyUpdate rejects UPDATEs that assign a partitioned
// table's key: the row would belong on a different shard afterwards, and
// the router does not move rows.
func (s *Session) checkPartitionKeyUpdate(up *sql.Update) error {
	spec, ok := s.r.specs[strings.ToLower(up.Table)]
	if !ok {
		return nil
	}
	for _, sc := range up.Set {
		if strings.EqualFold(sc.Column, spec.Column) {
			return fmt.Errorf("shard: UPDATE may not assign partition key %s.%s (delete and re-insert instead)", up.Table, spec.Column)
		}
	}
	return nil
}

// execWhereDML routes UPDATE/DELETE: the WHERE clause's interval on the
// partition key narrows the candidate shards (each shard owns disjoint
// rows, so fanning the statement to every candidate is exact); replicated
// tables fan everywhere.
func (s *Session) execWhereDML(ctx context.Context, table string, where expr.Expr, stmt string) (*client.Result, error) {
	spec, partitioned := s.r.specs[strings.ToLower(table)]
	targets := allShards(s.r.n)
	if partitioned {
		ivs := columnIntervals(where, table, "")
		if iv, ok := ivs[spec.Column]; ok {
			targets = spec.CandidateShards(iv, s.r.n)
		}
	}
	if len(targets) == 0 {
		return &client.Result{}, nil // predicate excludes every shard
	}
	if s.inTxn() {
		if !partitioned && s.r.n > 1 {
			return nil, multiShardErr(fmt.Sprintf("write to replicated table %s inside a transaction", table))
		}
		if len(targets) > 1 {
			return nil, multiShardErr(fmt.Sprintf("write to %s spanning shards %v", table, targets))
		}
		if inTxn, err := s.pinTxn(ctx, targets[0]); inTxn && err != nil {
			return nil, err
		}
		return s.query(ctx, targets[0], stmt)
	}
	results, err := s.fanOut(ctx, targets, stmt)
	if err != nil {
		return nil, err
	}
	out := &client.Result{}
	for i, res := range results {
		if partitioned {
			out.RowsAffected += res.RowsAffected
		} else if i == 0 {
			out.RowsAffected = res.RowsAffected
		}
		if i == 0 || partitioned {
			out.Notices = append(out.Notices, res.Notices...)
		}
	}
	return out, nil
}

// route computes a SELECT's target shards: partition routing narrows by
// the partition key's WHERE interval, then the constraint registry prunes
// shards whose characterizations exclude the predicate.
type routeDecision struct {
	targets []int
	pruned  []prunedShard
}

type prunedShard struct {
	shard  int
	entry  *Entry
	reason string
}

func (s *Session) route(sel *sql.Select, prune bool) (routeDecision, error) {
	d := routeDecision{}
	if len(sel.From) == 0 {
		d.targets = []int{0}
		return d, nil
	}
	var partitioned []sql.TableRef
	for _, ref := range sel.From {
		if _, ok := s.r.specs[strings.ToLower(ref.Table)]; ok {
			partitioned = append(partitioned, ref)
		}
	}
	if len(partitioned) == 0 {
		// Every table is replicated: one shard has all the rows.
		d.targets = []int{0}
		return d, nil
	}
	candidates := allShards(s.r.n)
	if len(partitioned) == 1 {
		ref := partitioned[0]
		spec := s.r.specs[strings.ToLower(ref.Table)]
		ivs := columnIntervals(sel.Where, ref.Table, ref.Alias)
		if len(sel.From) > 1 {
			// Unqualified columns are ambiguous across multiple tables;
			// only qualifier-matched conjuncts routed. columnIntervals
			// already enforces this via the refs it is given.
			ivs = columnIntervalsQualified(sel.Where, ref.Table, ref.Alias)
		}
		if iv, ok := ivs[spec.Column]; ok {
			candidates = spec.CandidateShards(iv, s.r.n)
		}
	} else if s.r.n > 1 {
		// Two partitioned tables fan to >1 shard would join only co-located
		// fragments and silently miss cross-shard pairs.
		return d, errUnsupported("joining two partitioned tables")
	}
	if !prune {
		d.targets = candidates
		return d, nil
	}
	for _, id := range candidates {
		skipped := false
		for _, ref := range partitioned {
			ivs := columnIntervals(sel.Where, ref.Table, ref.Alias)
			if len(sel.From) > 1 {
				ivs = columnIntervalsQualified(sel.Where, ref.Table, ref.Alias)
			}
			if e, reason, ok := s.r.reg.Prune(id, ref.Table, ivs); ok {
				d.pruned = append(d.pruned, prunedShard{shard: id, entry: e, reason: reason})
				skipped = true
				break
			}
		}
		if !skipped {
			d.targets = append(d.targets, id)
		}
	}
	s.creditPrunes(d.pruned)
	return d, nil
}

// creditPrunes books each avoided shard round-trip to the constraint that
// earned it — the economy-ledger analog of pages-skipped credit.
func (s *Session) creditPrunes(pruned []prunedShard) {
	for _, p := range pruned {
		name := p.entry.Constraint
		if name == "" {
			name = fmt.Sprintf("partition(%s)", p.entry.Table)
		}
		s.r.econ.CreditShardsPruned(name, 1)
		reason := "range"
		switch {
		case p.entry.Kind == KindHole:
			reason = "hole"
		case p.entry.Iv.Empty():
			reason = "empty"
		}
		s.r.cPruned[reason].Inc()
	}
}

func (s *Session) execSelect(ctx context.Context, sel *sql.Select, text string) (*client.Result, error) {
	s.mu.Lock()
	prune := s.prune && !s.r.cfg.NoPrune
	s.mu.Unlock()
	d, err := s.route(sel, prune)
	if err != nil {
		return nil, err
	}
	if len(d.targets) == 0 {
		// Every shard excluded: synthesize the empty result (aggregates
		// still need their one global row, which planSelect provides by
		// merging zero shard results — combine() on no rows).
		return s.emptySelect(ctx, sel)
	}
	if s.inTxn() {
		if len(d.targets) > 1 {
			return nil, multiShardErr(fmt.Sprintf("SELECT spanning shards %v inside a transaction", d.targets))
		}
		if inTxn, err := s.pinTxn(ctx, d.targets[0]); inTxn && err != nil {
			return nil, err
		}
	}
	if len(d.targets) == 1 {
		return s.query(ctx, d.targets[0], text)
	}
	plan, err := planSelect(sel, func(t string) ([]string, error) { return s.r.schemaColumns(ctx, t) })
	if err != nil {
		return nil, err
	}
	results, err := s.fanOut(ctx, d.targets, sql.Print(plan.perShard))
	if err != nil {
		return nil, err
	}
	shardRows := make([][]types.Row, len(results))
	for i, res := range results {
		shardRows[i] = res.Rows
	}
	return &client.Result{
		Columns: plan.columns(results[0].Columns),
		Rows:    plan.mergeRows(shardRows),
	}, nil
}

// emptySelect answers a SELECT whose every shard was excluded: no shard
// holds a matching row, so any one shard computes the exact global answer
// — zero rows for a scan, the empty-input row (COUNT 0, SUM NULL, ...)
// for aggregates — keeping aggregate semantics in the engine rather than
// re-implemented here.
func (s *Session) emptySelect(ctx context.Context, sel *sql.Select) (*client.Result, error) {
	return s.query(ctx, 0, sql.Print(sel))
}

// --- EXPLAIN ---

func (s *Session) execExplain(ctx context.Context, ex *sql.Explain, text string) (*client.Result, error) {
	sel, isSelect := ex.Stmt.(*sql.Select)
	if !isSelect {
		res, err := s.query(ctx, 0, text)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, routerPlanRow(fmt.Sprintf("router: shards=1/%d pruned=0", s.r.n)))
		return res, nil
	}
	s.mu.Lock()
	prune := s.prune && !s.r.cfg.NoPrune
	s.mu.Unlock()
	d, err := s.route(sel, prune)
	if err != nil {
		return nil, err
	}
	keyword := "EXPLAIN"
	if ex.Analyze {
		keyword = "EXPLAIN ANALYZE"
	}
	var res *client.Result
	switch {
	case len(d.targets) == 0:
		res = &client.Result{Columns: []string{"plan"}}
	case len(d.targets) == 1:
		res, err = s.query(ctx, d.targets[0], text)
	default:
		plan, perr := planSelect(sel, func(t string) ([]string, error) { return s.r.schemaColumns(ctx, t) })
		if perr != nil {
			return nil, perr
		}
		var results []*client.Result
		results, err = s.fanOut(ctx, d.targets, keyword+" "+sql.Print(plan.perShard))
		if err == nil {
			res = results[0]
			if plan.agg != nil {
				res.Rows = append(res.Rows, routerPlanRow("router: merge: combine aggregate partials"))
			} else {
				res.Rows = append(res.Rows, routerPlanRow("router: merge: concatenate shard rows"))
			}
		}
	}
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, routerPlanRow(fmt.Sprintf("router: shards=%d/%d pruned=%d", len(d.targets), s.r.n, len(d.pruned))))
	for _, p := range d.pruned {
		res.Rows = append(res.Rows, routerPlanRow(fmt.Sprintf("router: shard-pruned %d: %s", p.shard, p.reason)))
	}
	return res, nil
}

func routerPlanRow(line string) types.Row {
	return types.Row{types.NewString(line)}
}

// --- SHOW ---

// showShards renders the topology and the registry in the same column
// shape a plain engine answers SHOW SHARDS with (engine.go returns the
// empty single-node topology; the router intercepts and fills it in).
func (s *Session) showShards() *client.Result {
	res := &client.Result{Columns: []string{"shard", "addr", "state", "table", "column", "kind", "range", "constraint"}}
	for i, addr := range s.r.cfg.Addrs {
		res.Rows = append(res.Rows, types.Row{
			types.NewInt(int64(i)), types.NewString(addr), types.NewString("configured"),
			types.Null, types.Null, types.Null, types.Null, types.Null,
		})
	}
	for _, sp := range s.r.cfg.Specs {
		for i := 0; i < s.r.n; i++ {
			res.Rows = append(res.Rows, types.Row{
				types.NewInt(int64(i)), types.NewString(s.r.cfg.Addrs[i]), types.NewString("partition"),
				types.NewString(sp.Table), types.NewString(sp.Column), types.NewString(sp.Scheme.String()),
				types.NewString(sp.OwnedInterval(i, s.r.n).String()), types.Null,
			})
		}
	}
	for _, e := range s.r.reg.Snapshot() {
		state := "active"
		if !e.Active {
			state = "retired"
		}
		constraint := types.Null
		if e.Constraint != "" {
			constraint = types.NewString(e.Constraint)
		}
		res.Rows = append(res.Rows, types.Row{
			types.NewInt(int64(e.Shard)), types.NewString(s.r.cfg.Addrs[e.Shard]), types.NewString(state),
			types.NewString(e.Table), types.NewString(e.Column), types.NewString(e.Kind.String()),
			types.NewString(e.Iv.String()), constraint,
		})
	}
	return res
}

// showEconomy renders the router's own constraint economy: what each
// registry entry's backing constraint has earned in avoided shard
// round-trips.
func (s *Session) showEconomy() *client.Result {
	rows := s.r.econ.Snapshot()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ShardsPruned != rows[j].ShardsPruned {
			return rows[i].ShardsPruned > rows[j].ShardsPruned
		}
		return rows[i].Name < rows[j].Name
	})
	res := &client.Result{Columns: []string{"constraint", "shards_pruned"}}
	for _, r := range rows {
		res.Rows = append(res.Rows, types.Row{types.NewString(r.Name), types.NewInt(r.ShardsPruned)})
	}
	return res
}

// --- predicate extraction ---

// conjunctsOf splits a WHERE clause into its top-level AND conjuncts.
func conjunctsOf(e expr.Expr, out []expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return conjunctsOf(b.R, conjunctsOf(b.L, out))
	}
	return append(out, e)
}

// columnIntervals folds a WHERE clause's `col op const` conjuncts into
// per-column intervals for one table binding. Unqualified columns are
// attributed to the table (valid when it is the only one in FROM).
func columnIntervals(where expr.Expr, table, alias string) map[string]expr.Interval {
	return extractIntervals(where, table, alias, true)
}

// columnIntervalsQualified is columnIntervals restricted to conjuncts
// whose column carries a matching qualifier — required when several
// tables are in scope and a bare column name is ambiguous.
func columnIntervalsQualified(where expr.Expr, table, alias string) map[string]expr.Interval {
	return extractIntervals(where, table, alias, false)
}

func extractIntervals(where expr.Expr, table, alias string, allowBare bool) map[string]expr.Interval {
	if where == nil {
		return nil
	}
	out := map[string]expr.Interval{}
	for _, c := range conjunctsOf(where, nil) {
		lhs, op, val, ok := expr.DecomposeComparison(c)
		if !ok || op == expr.OpNe {
			continue
		}
		col, isCol := lhs.(*expr.Column)
		if !isCol {
			continue
		}
		switch {
		case col.Qualifier == "":
			if !allowBare {
				continue
			}
		case strings.EqualFold(col.Qualifier, table), alias != "" && strings.EqualFold(col.Qualifier, alias):
		default:
			continue
		}
		iv, ok := expr.IntervalForOp(op, val)
		if !ok {
			continue
		}
		name := strings.ToLower(col.Name)
		if prev, seen := out[name]; seen {
			iv = prev.Intersect(iv)
		}
		out[name] = iv
	}
	return out
}
