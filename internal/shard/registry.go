package shard

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"softdb/internal/expr"
)

// EntryKind distinguishes the two characterization shapes the registry
// holds per (shard, table, column).
type EntryKind int

const (
	// KindRange: the shard's rows for this column all lie inside Iv.
	// A predicate disjoint with Iv prunes the shard.
	KindRange EntryKind = iota
	// KindHole: the shard provably holds no row with this column inside
	// Iv. A predicate covered by Iv prunes the shard.
	KindHole
)

func (k EntryKind) String() string {
	if k == KindHole {
		return "hole"
	}
	return "range"
}

// Entry is one shard-local data characterization: a value range or a
// proven hole over one column, backed by a soft absolute CHECK constraint
// installed on the shard itself. The backing ASC is what makes the entry
// safe to trust across writes the router never saw the inside of: any
// violating write deactivates the shard-side constraint and emits the
// deactivation notice, which the router absorbs (RetireConstraint) from
// that write's own response.
type Entry struct {
	Shard  int
	Table  string // lower-case
	Column string // lower-case
	Kind   EntryKind
	Iv     expr.Interval
	// Constraint is the backing shard-side ASC's name; empty for entries
	// derived from authoritative partition bounds (not retirable).
	Constraint string
	// Active: retired entries stay visible in SHOW SHARDS but never prune.
	Active bool
}

// Registry is the router's map of shard-local characterizations. Safe for
// concurrent use: queries consult it on every routing decision while
// write responses retire entries through it.
type Registry struct {
	mu      sync.RWMutex
	entries []*Entry
	// byConstraint indexes retirable entries: notice absorption resolves
	// the constraint name a shard reported without scanning.
	byConstraint map[string]*Entry
	retired      int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byConstraint: map[string]*Entry{}}
}

// Install adds (or replaces) an entry. Replacement key: same shard,
// table, column, kind, and constraint-backing status — a re-sync refresh
// supersedes the previous generation's entry.
func (r *Registry) Install(e Entry) {
	e.Table = strings.ToLower(e.Table)
	e.Column = strings.ToLower(e.Column)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.entries {
		if old.Shard == e.Shard && old.Table == e.Table && old.Column == e.Column &&
			old.Kind == e.Kind && (old.Constraint == "") == (e.Constraint == "") {
			if old.Constraint != "" {
				delete(r.byConstraint, strings.ToLower(old.Constraint))
			}
			r.entries[i] = &e
			if e.Constraint != "" {
				r.byConstraint[strings.ToLower(e.Constraint)] = &e
			}
			return
		}
	}
	r.entries = append(r.entries, &e)
	if e.Constraint != "" {
		r.byConstraint[strings.ToLower(e.Constraint)] = &e
	}
}

// RetireConstraint deactivates the entry backed by the named shard-side
// constraint, reporting whether an active entry was retired.
func (r *Registry) RetireConstraint(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byConstraint[strings.ToLower(name)]
	if !ok || !e.Active {
		return false
	}
	e.Active = false
	r.retired++
	return true
}

// DropTable removes every entry for a table, on DROP TABLE or CREATE
// TABLE through the router: stale characterizations of a dropped table
// must never prune queries against a later table of the same name.
func (r *Registry) DropTable(table string) {
	table = strings.ToLower(table)
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.Table == table {
			if e.Constraint != "" {
				delete(r.byConstraint, strings.ToLower(e.Constraint))
			}
			continue
		}
		kept = append(kept, e)
	}
	r.entries = kept
}

// Retired returns how many entries have been retired over the registry's
// lifetime.
func (r *Registry) Retired() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.retired
}

// Prune decides whether the shard can be skipped for a query over table
// whose predicate pins the given per-column intervals (column → interval
// the WHERE clause proves). It returns the winning entry and a rendered
// reason when the shard is prunable.
func (r *Registry) Prune(shardID int, table string, colIvs map[string]expr.Interval) (*Entry, string, bool) {
	table = strings.ToLower(table)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if !e.Active || e.Shard != shardID || e.Table != table {
			continue
		}
		iv, ok := colIvs[e.Column]
		if !ok {
			// A range entry with an empty interval marks a shard holding no
			// rows of the table at all; it prunes regardless of predicate.
			if e.Kind == KindRange && e.Iv.Empty() {
				return e, fmt.Sprintf("%s empty on shard %d", e.Table, e.Shard), true
			}
			continue
		}
		switch e.Kind {
		case KindRange:
			if iv.Disjoint(e.Iv) {
				return e, fmt.Sprintf("%s.%s %s outside shard %d range %s", e.Table, e.Column, iv, e.Shard, e.Iv), true
			}
		case KindHole:
			if !iv.IsUnbounded() && iv.CoveredBy(e.Iv) {
				return e, fmt.Sprintf("%s.%s %s inside shard %d proven hole %s", e.Table, e.Column, iv, e.Shard, e.Iv), true
			}
		}
	}
	return nil, "", false
}

// Snapshot returns a stable-ordered copy of every entry for SHOW SHARDS
// and the debug endpoint.
func (r *Registry) Snapshot() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Kind < b.Kind
	})
	return out
}

// ascDeactivated matches the engine's dml.go deactivation notice:
//
//	ASC <name> on <table> deactivated by violating write
//
// This is the cross-shard invalidation signal: the notice string is the
// contract (PR 5 made it the cross-session one), so the router parses it
// rather than inventing a second channel.
var ascDeactivated = regexp.MustCompile(`^ASC (\S+) on \S+ deactivated by violating write$`)

// AbsorbNotices scans a shard response's notices for constraint
// deactivations and retires the matching registry entries, returning how
// many entries were retired.
func (r *Registry) AbsorbNotices(notices []string) int {
	n := 0
	for _, notice := range notices {
		if m := ascDeactivated.FindStringSubmatch(notice); m != nil {
			if r.RetireConstraint(m[1]) {
				n++
			}
		}
	}
	return n
}
