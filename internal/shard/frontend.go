package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"softdb/internal/wire"
)

// Frontend serves the softdb wire protocol over TCP, backed by a Router
// instead of an engine: clients connect with the ordinary client library
// (or softdb -connect) and cannot tell they are talking to a router
// except through SHOW SHARDS and the router lines in EXPLAIN.
type Frontend struct {
	r   *Router
	cfg FrontendConfig

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
}

// FrontendConfig tunes one Frontend.
type FrontendConfig struct {
	// Addr is the TCP listen address; ":0" picks an ephemeral port.
	Addr string
	// IdleTimeout closes a connection that sends no request for this
	// long; 0 means never.
	IdleTimeout time.Duration
	// Logger, when non-nil, receives connection lifecycle logs.
	Logger *slog.Logger
}

// NewFrontend builds a wire front end over r.
func NewFrontend(r *Router, cfg FrontendConfig) *Frontend {
	ctx, cancel := context.WithCancel(context.Background())
	return &Frontend{
		r:          r,
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      map[net.Conn]struct{}{},
	}
}

// Listen binds the configured address and returns the actual bound
// address.
func (f *Frontend) Listen() (net.Addr, error) {
	lis, err := net.Listen("tcp", f.cfg.Addr)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.lis = lis
	f.mu.Unlock()
	return lis.Addr(), nil
}

// Serve accepts connections until Shutdown. Call Listen first.
func (f *Frontend) Serve() error {
	f.mu.Lock()
	lis := f.lis
	f.mu.Unlock()
	if lis == nil {
		return errors.New("shard: Serve before Listen")
	}
	for {
		c, err := lis.Accept()
		if err != nil {
			if f.draining.Load() {
				return nil
			}
			return err
		}
		f.mu.Lock()
		if f.draining.Load() {
			f.mu.Unlock()
			_ = c.Close()
			continue
		}
		f.conns[c] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.handleConn(c)
		}()
	}
}

func (f *Frontend) dropConn(c net.Conn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
	_ = c.Close()
}

func (f *Frontend) logf(level slog.Level, msg string, args ...any) {
	if f.cfg.Logger != nil {
		f.cfg.Logger.Log(context.Background(), level, msg, args...)
	}
}

// handleConn runs one connection's request loop, mirroring the engine
// server's: welcome, then one response sequence per FrameQuery/FrameSet.
func (f *Frontend) handleConn(c net.Conn) {
	defer f.dropConn(c)
	sess := f.r.NewSession()
	defer sess.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	welcome := wire.Welcome{Proto: wire.ProtoVersion, Session: sess.Label()}
	if err := wire.WriteFrame(bw, wire.FrameWelcome, wire.AppendWelcome(nil, welcome)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	f.logf(slog.LevelInfo, "connection open", "session", sess.Label(), "remote", c.RemoteAddr().String())
	defer f.logf(slog.LevelInfo, "connection closed", "session", sess.Label())
	for {
		if f.cfg.IdleTimeout > 0 {
			_ = c.SetReadDeadline(time.Now().Add(f.cfg.IdleTimeout))
		} else {
			_ = c.SetReadDeadline(time.Time{})
		}
		if f.draining.Load() {
			return
		}
		t, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch t {
		case wire.FrameSet:
			set, err := wire.ParseSet(payload)
			if err == nil {
				err = sess.Set(set.Name, set.Value)
			}
			if err != nil {
				if !f.writeError(bw, err) {
					return
				}
				continue
			}
			if wire.WriteFrame(bw, wire.FrameOK, nil) != nil || bw.Flush() != nil {
				return
			}
		case wire.FrameQuery:
			q, err := wire.ParseQuery(payload)
			if err != nil {
				f.writeError(bw, err)
				return // framing is broken; don't trust the stream
			}
			if !f.handleQuery(sess, q, bw) {
				return
			}
		default:
			f.writeError(bw, fmt.Errorf("shard: unexpected frame type 0x%02x", byte(t)))
			return
		}
	}
}

func (f *Frontend) handleQuery(sess *Session, q wire.Query, bw *bufio.Writer) bool {
	ctx := f.baseCtx
	if q.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(q.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	res, err := sess.Exec(ctx, q.SQL)
	if err != nil {
		return f.writeError(bw, err)
	}
	if wire.WriteResponse(bw, res.Columns, res.Rows, res.Notices, res.RowsAffected) != nil {
		return false
	}
	return bw.Flush() == nil
}

func (f *Frontend) writeError(bw *bufio.Writer, err error) bool {
	if wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, wire.ErrorFrom(err))) != nil {
		return false
	}
	return bw.Flush() == nil
}

// Shutdown drains the front end: stop accepting, cancel in-flight
// statements, wake idle readers, wait for handlers. When ctx expires
// first, remaining connections are force-closed.
func (f *Frontend) Shutdown(ctx context.Context) error {
	if !f.draining.CompareAndSwap(false, true) {
		return nil
	}
	f.mu.Lock()
	if f.lis != nil {
		_ = f.lis.Close()
	}
	f.baseCancel()
	for c := range f.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	f.mu.Unlock()
	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		f.mu.Lock()
		for c := range f.conns {
			_ = c.Close()
		}
		f.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// DebugHandler serves the router's observability surface: /metrics in
// Prometheus format and /debug/shards as a JSON dump of the topology and
// the constraint registry.
func (r *Router) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/shards", func(w http.ResponseWriter, _ *http.Request) {
		type entryJSON struct {
			Shard      int    `json:"shard"`
			Table      string `json:"table"`
			Column     string `json:"column"`
			Kind       string `json:"kind"`
			Range      string `json:"range"`
			Constraint string `json:"constraint,omitempty"`
			Active     bool   `json:"active"`
		}
		out := struct {
			Addrs   []string    `json:"addrs"`
			Specs   []string    `json:"specs"`
			Retired int64       `json:"retired"`
			Entries []entryJSON `json:"entries"`
		}{Addrs: r.cfg.Addrs, Retired: r.reg.Retired()}
		for _, sp := range r.cfg.Specs {
			out.Specs = append(out.Specs, sp.String())
		}
		for _, e := range r.reg.Snapshot() {
			out.Entries = append(out.Entries, entryJSON{
				Shard: e.Shard, Table: e.Table, Column: e.Column,
				Kind: e.Kind.String(), Range: e.Iv.String(),
				Constraint: e.Constraint, Active: e.Active,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	return mux
}
