package shard

import (
	"testing"

	"softdb/internal/expr"
	"softdb/internal/types"
)

func iv(lo, hi int64) expr.Interval {
	return expr.Between(types.NewInt(lo), types.NewInt(hi), true, true)
}

func TestRegistryPruneRange(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 1, Table: "t", Column: "k", Kind: KindRange, Iv: iv(100, 200), Constraint: "c1", Active: true})
	// Predicate fully below the shard's range: prune.
	if _, _, ok := r.Prune(1, "t", map[string]expr.Interval{"k": iv(0, 50)}); !ok {
		t.Fatal("disjoint predicate should prune")
	}
	// Overlapping predicate: no prune.
	if _, _, ok := r.Prune(1, "t", map[string]expr.Interval{"k": iv(150, 300)}); ok {
		t.Fatal("overlapping predicate must not prune")
	}
	// Other shard, other table, other column: no prune.
	if _, _, ok := r.Prune(0, "t", map[string]expr.Interval{"k": iv(0, 50)}); ok {
		t.Fatal("entry is shard-local")
	}
	if _, _, ok := r.Prune(1, "u", map[string]expr.Interval{"k": iv(0, 50)}); ok {
		t.Fatal("entry is table-local")
	}
	if _, _, ok := r.Prune(1, "t", map[string]expr.Interval{"x": iv(0, 50)}); ok {
		t.Fatal("entry is column-local")
	}
}

func TestRegistryPruneHole(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 0, Table: "t", Column: "k", Kind: KindHole, Iv: iv(100, 200), Constraint: "h1", Active: true})
	if _, reason, ok := r.Prune(0, "t", map[string]expr.Interval{"k": iv(120, 180)}); !ok {
		t.Fatal("predicate inside the hole should prune")
	} else if reason == "" {
		t.Fatal("prune must explain itself")
	}
	if _, _, ok := r.Prune(0, "t", map[string]expr.Interval{"k": iv(50, 150)}); ok {
		t.Fatal("predicate straddling the hole must not prune")
	}
	if _, _, ok := r.Prune(0, "t", map[string]expr.Interval{"k": expr.Unbounded()}); ok {
		t.Fatal("unbounded predicate must never be 'inside' a hole")
	}
}

func TestRegistryPruneEmptyShard(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 2, Table: "t", Column: "k", Kind: KindRange, Iv: expr.Interval{ExactEmpty: true}, Constraint: "e1", Active: true})
	// An empty shard prunes with or without a predicate on the column.
	if _, _, ok := r.Prune(2, "t", map[string]expr.Interval{"k": iv(1, 2)}); !ok {
		t.Fatal("empty shard should prune predicated query")
	}
	if _, _, ok := r.Prune(2, "t", nil); !ok {
		t.Fatal("empty shard should prune unpredicated query")
	}
	if _, _, ok := r.Prune(2, "u", nil); ok {
		t.Fatal("emptiness is per-table")
	}
}

func TestRegistryRetire(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 0, Table: "t", Column: "k", Kind: KindRange, Iv: iv(0, 10), Constraint: "router_t_s0_g1", Active: true})
	if !r.RetireConstraint("ROUTER_T_S0_G1") { // case-insensitive
		t.Fatal("retire should find the entry")
	}
	if r.RetireConstraint("router_t_s0_g1") {
		t.Fatal("second retire should be a no-op")
	}
	if r.Retired() != 1 {
		t.Fatalf("retired = %d", r.Retired())
	}
	if _, _, ok := r.Prune(0, "t", map[string]expr.Interval{"k": iv(100, 200)}); ok {
		t.Fatal("retired entry must not prune")
	}
	// Still visible in the snapshot, marked inactive.
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Active {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRegistryInstallReplacesGeneration(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 0, Table: "t", Column: "k", Kind: KindRange, Iv: iv(0, 10), Constraint: "g1", Active: true})
	r.Install(Entry{Shard: 0, Table: "t", Column: "k", Kind: KindRange, Iv: iv(0, 100), Constraint: "g2", Active: true})
	if len(r.Snapshot()) != 1 {
		t.Fatalf("re-sync should replace, have %d entries", len(r.Snapshot()))
	}
	// The superseded generation's notices no longer retire anything; the
	// new generation's do.
	if r.RetireConstraint("g1") {
		t.Fatal("old generation should be forgotten")
	}
	if !r.RetireConstraint("g2") {
		t.Fatal("new generation should retire")
	}
}

func TestRegistryAbsorbNotices(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 0, Table: "t", Column: "k", Kind: KindRange, Iv: iv(0, 10), Constraint: "router_t_s0_g1", Active: true})
	r.Install(Entry{Shard: 1, Table: "t", Column: "k", Kind: KindRange, Iv: iv(0, 10), Constraint: "router_t_s1_g2", Active: true})
	n := r.AbsorbNotices([]string{
		"ASC router_t_s0_g1 on t deactivated by violating write",
		"constraint check passed",                       // unrelated notice
		"ASC unknown_name on t deactivated by violating write", // not ours
	})
	if n != 1 {
		t.Fatalf("absorbed %d, want 1", n)
	}
	if r.Retired() != 1 {
		t.Fatalf("retired = %d", r.Retired())
	}
	// The untouched shard's entry still prunes.
	if _, _, ok := r.Prune(1, "t", map[string]expr.Interval{"k": iv(100, 200)}); !ok {
		t.Fatal("shard 1 entry should still be active")
	}
}

func TestRegistryDropTable(t *testing.T) {
	r := NewRegistry()
	r.Install(Entry{Shard: 0, Table: "t", Column: "k", Kind: KindRange, Iv: iv(0, 10), Constraint: "c1", Active: true})
	r.Install(Entry{Shard: 0, Table: "u", Column: "k", Kind: KindRange, Iv: iv(0, 10), Constraint: "c2", Active: true})
	r.DropTable("T")
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Table != "u" {
		t.Fatalf("snapshot after drop = %+v", snap)
	}
	if r.RetireConstraint("c1") {
		t.Fatal("dropped table's constraints should be forgotten")
	}
}
