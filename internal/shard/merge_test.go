package shard

import (
	"testing"

	"softdb/internal/sql"
	"softdb/internal/types"
)

func mustSelect(t *testing.T, text string) *sql.Select {
	t.Helper()
	st, err := sql.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		t.Fatalf("%q is %T", text, st)
	}
	return sel
}

func intRow(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestPlanPlainSelectOrderLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT k, v FROM t WHERE v > 0 ORDER BY k DESC LIMIT 3")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.agg != nil || !p.hasOrder || p.limit != 3 {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.order) != 1 || p.order[0].col != 0 || !p.order[0].desc {
		t.Fatalf("order = %+v", p.order)
	}
	rows := p.mergeRows([][]types.Row{
		{intRow(1, 10), intRow(5, 50)},
		{intRow(3, 30), intRow(9, 90)},
	})
	if len(rows) != 3 {
		t.Fatalf("limit not applied: %d rows", len(rows))
	}
	if rows[0][0].Int() != 9 || rows[1][0].Int() != 5 || rows[2][0].Int() != 3 {
		t.Fatalf("merged order wrong: %v", rows)
	}
}

func TestPlanPlainSelectDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT k FROM t")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := p.mergeRows([][]types.Row{
		{intRow(1), intRow(2)},
		{intRow(2), intRow(3)},
	})
	if len(rows) != 3 {
		t.Fatalf("distinct merge: %v", rows)
	}
}

func TestPlanStarOrderByNeedsSchema(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t ORDER BY k")
	schema := func(string) ([]string, error) { return []string{"id", "k", "v"}, nil }
	p, err := planSelect(sel, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.order) != 1 || p.order[0].col != 1 {
		t.Fatalf("ORDER BY k should resolve to expanded column 1, got %+v", p.order)
	}
	if _, err := planSelect(sel, nil); err == nil {
		t.Fatal("star + ORDER BY without a schema resolver should fail")
	}
}

func TestPlanAggSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t GROUP BY g")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.agg == nil || len(p.agg.groupSrc) != 1 || p.agg.groupSrc[0] != 0 {
		t.Fatalf("plan = %+v", p)
	}
	// Per-shard statement: the original items verbatim (their row
	// description supplies the exact output names), then AVG's SUM+COUNT
	// partials appended.
	per := sql.Print(p.perShard)
	want := "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v), SUM(v), COUNT(v) FROM t GROUP BY g"
	if per != want {
		t.Fatalf("per-shard = %q, want %q", per, want)
	}
	// Shard 0: group 1 has 2 rows summing 30 (min 10 max 20); group 2 one
	// row of 5. Shard 1: group 1 has 1 row of 40. Layout: g, count, sum,
	// min, max, avg (ignored), sum partial, count partial.
	rows := p.mergeRows([][]types.Row{
		{intRow(1, 2, 30, 10, 20, 15, 30, 2), intRow(2, 1, 5, 5, 5, 5, 5, 1)},
		{intRow(1, 1, 40, 40, 40, 40, 40, 1)},
	})
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	g1 := rows[0]
	if g1[0].Int() != 1 || g1[1].Int() != 3 || g1[2].Int() != 70 || g1[3].Int() != 10 || g1[4].Int() != 40 {
		t.Fatalf("group 1 = %v", g1)
	}
	if g1[5].Kind() != types.KindFloat || g1[5].Float() != 70.0/3.0 {
		t.Fatalf("avg = %v", g1[5])
	}
	if got := p.columns(nil); got[1] != "count(*)" || got[5] != "avg(v)" {
		t.Fatalf("columns = %v", got)
	}
}

func TestAggMergeGlobalGroup(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*), SUM(v) FROM t")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every shard returns its one global row, including empty shards
	// (COUNT 0, SUM NULL).
	rows := p.mergeRows([][]types.Row{
		{types.Row{types.NewInt(0), types.Null}},
		{intRow(3, 60)},
	})
	if len(rows) != 1 || rows[0][0].Int() != 3 || rows[0][1].Int() != 60 {
		t.Fatalf("global merge = %v", rows)
	}
}

func TestAggMergeAllNull(t *testing.T) {
	sel := mustSelect(t, "SELECT SUM(v), AVG(v), MIN(v) FROM t")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: sum, avg (ignored), min, then AVG's sum+count partials.
	rows := p.mergeRows([][]types.Row{
		{types.Row{types.Null, types.Null, types.Null, types.Null, types.NewInt(0)}},
		{types.Row{types.Null, types.Null, types.Null, types.Null, types.NewInt(0)}},
	})
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	for i, d := range rows[0] {
		if !d.IsNull() {
			t.Errorf("col %d should be NULL over no values, got %v", i, d)
		}
	}
}

func TestAggMergeFloatSum(t *testing.T) {
	sel := mustSelect(t, "SELECT SUM(v) FROM t")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := p.mergeRows([][]types.Row{
		{types.Row{types.NewFloat(1.5)}},
		{types.Row{types.NewInt(2)}},
	})
	if rows[0][0].Kind() != types.KindFloat || rows[0][0].Float() != 3.5 {
		t.Fatalf("mixed sum = %v", rows[0][0])
	}
}

func TestPlanAggOrderByAlias(t *testing.T) {
	sel := mustSelect(t, "SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY n DESC, g")
	p, err := planSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := p.mergeRows([][]types.Row{
		{intRow(1, 1, 0), intRow(2, 5, 0)},
		{intRow(3, 5, 0)},
	})
	_ = rows
	if len(p.order) != 2 || p.order[0].col != 1 || !p.order[0].desc || p.order[1].col != 0 {
		t.Fatalf("order = %+v", p.order)
	}
}

func TestPlanRejectsCrossShardUnsupported(t *testing.T) {
	for _, text := range []string{
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n > 1",
		"SELECT k FROM t UNION ALL SELECT k FROM u",
		"SELECT COUNT(DISTINCT v) FROM t",
		"SELECT v FROM t GROUP BY g",
	} {
		sel := mustSelect(t, text)
		if _, err := planSelect(sel, nil); err == nil {
			t.Errorf("planSelect(%q) should fail", text)
		}
	}
}

func TestPlanAggDistinctRejected(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT g, COUNT(*) FROM t GROUP BY g")
	if _, err := planSelect(sel, nil); err == nil {
		t.Fatal("DISTINCT with aggregates should be rejected across shards")
	}
}
