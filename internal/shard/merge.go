package shard

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/expr"
	"softdb/internal/sql"
	"softdb/internal/types"
)

// selectPlan is a multi-shard SELECT's split into a per-shard statement
// and a router-side merge. Single-target queries never build one — they
// proxy verbatim, so every engine feature works unreduced on one shard;
// the plan exists only where the router genuinely has to combine rows.
type selectPlan struct {
	perShard *sql.Select
	agg      *aggPlan // nil: plain row merge
	distinct bool
	order    []orderKey
	hasOrder bool
	limit    int64 // -1: none
}

type orderKey struct {
	col  int
	desc bool
}

// aggPlan maps per-shard partial-aggregate rows onto final output rows.
// Per-shard output layout: the original select items verbatim (so the
// shard's row description carries the exact column names the engine would
// produce single-node, aliases included), then appended helper columns —
// SUM and COUNT partials for each AVG, and any GROUP BY expression absent
// from the select list (needed to key the combine). The helper columns are
// sliced off the merged result. AVG partials recombine exactly because the
// engine's own parallel aggregation merges with the same arithmetic.
type aggPlan struct {
	groupSrc []int // per-shard column indices forming the group key
	outs     []aggOut
}

type aggOut struct {
	name string
	kind sql.AggKind // AggNone: group-key passthrough
	src  int         // per-shard column index holding the partial
	src2 int         // AVG's COUNT partial (src is its SUM partial)
}

func errUnsupported(what string) error {
	return fmt.Errorf("shard: %s is not supported across shards (route the query to a single shard, or add a partition-key predicate)", what)
}

func exprKey(e expr.Expr) string { return strings.ToLower(e.String()) }

// schemaFn resolves a table's column names (the router fetches them from
// a shard and caches); nil when no resolver is available.
type schemaFn func(table string) ([]string, error)

// planSelect splits s for fan-out over more than one shard.
func planSelect(s *sql.Select, schema schemaFn) (*selectPlan, error) {
	if s.UnionAll != nil {
		return nil, errUnsupported("UNION ALL")
	}
	if s.Having != nil {
		return nil, errUnsupported("HAVING")
	}
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != sql.AggNone {
			hasAgg = true
		}
	}
	if !hasAgg && len(s.GroupBy) == 0 {
		return planPlainSelect(s, schema)
	}
	return planAggSelect(s)
}

// planPlainSelect handles projection-only queries: each shard runs the
// statement as written (ORDER BY and LIMIT push down — a shard's top-k
// superset of the global top-k), and the router concatenates, dedupes
// under DISTINCT, re-sorts, and re-applies LIMIT.
func planPlainSelect(s *sql.Select, schema schemaFn) (*selectPlan, error) {
	p := &selectPlan{perShard: s, distinct: s.Distinct, limit: s.Limit}
	if len(s.OrderBy) == 0 {
		return p, nil
	}
	// Re-sorting at the router needs every sort key resolvable to an
	// output column of the per-shard result. Star items are expanded via
	// the schema so item indexes stay aligned with column offsets.
	outCols, err := outputColumns(s, schema)
	if err != nil {
		return nil, err
	}
	items, err := expandItems(s, schema)
	if err != nil {
		return nil, err
	}
	for _, oi := range s.OrderBy {
		idx := resolveOrderExpr(oi.Expr, items, outCols)
		if idx < 0 {
			return nil, errUnsupported(fmt.Sprintf("ORDER BY %s (not an output column)", oi.Expr))
		}
		p.order = append(p.order, orderKey{col: idx, desc: oi.Desc})
	}
	p.hasOrder = true
	return p, nil
}

// planAggSelect decomposes aggregates into per-shard partials.
func planAggSelect(s *sql.Select) (*selectPlan, error) {
	if s.Distinct {
		return nil, errUnsupported("DISTINCT with aggregates")
	}
	perShard := &sql.Select{From: s.From, Where: s.Where, GroupBy: s.GroupBy, Limit: -1}
	perShard.Items = append(perShard.Items, s.Items...)
	groupKeys := map[string]bool{}
	for _, g := range s.GroupBy {
		groupKeys[exprKey(g)] = true
	}
	ap := &aggPlan{}
	next := len(s.Items)
	scalarAt := map[string]int{} // exprKey of a scalar item -> its position
	for i, it := range s.Items {
		switch {
		case it.Star:
			return nil, errUnsupported("* with aggregates")
		case it.Agg == sql.AggCountDistinct:
			return nil, errUnsupported("COUNT(DISTINCT)")
		case it.Agg == sql.AggAvg:
			// The shard's own AVG column at position i is only there for
			// its name; the value is recomputed from the appended partials.
			perShard.Items = append(perShard.Items,
				sql.SelectItem{Agg: sql.AggSum, Expr: it.Expr},
				sql.SelectItem{Agg: sql.AggCount, Expr: it.Expr})
			ap.outs = append(ap.outs, aggOut{name: itemName(it), kind: sql.AggAvg, src: next, src2: next + 1})
			next += 2
		case it.Agg != sql.AggNone:
			ap.outs = append(ap.outs, aggOut{name: itemName(it), kind: it.Agg, src: i})
		default:
			if !groupKeys[exprKey(it.Expr)] {
				return nil, fmt.Errorf("shard: %s must appear in GROUP BY or an aggregate", it.Expr)
			}
			scalarAt[exprKey(it.Expr)] = i
			ap.outs = append(ap.outs, aggOut{name: itemName(it), kind: sql.AggNone, src: i})
		}
	}
	for _, g := range s.GroupBy {
		if at, ok := scalarAt[exprKey(g)]; ok {
			ap.groupSrc = append(ap.groupSrc, at)
			continue
		}
		perShard.Items = append(perShard.Items, sql.SelectItem{Expr: g})
		ap.groupSrc = append(ap.groupSrc, next)
		next++
	}
	p := &selectPlan{perShard: perShard, agg: ap, limit: s.Limit}
	if len(s.OrderBy) > 0 {
		finalCols := make([]string, len(ap.outs))
		finalItems := make([]sql.SelectItem, len(s.Items))
		copy(finalItems, s.Items)
		for i, o := range ap.outs {
			finalCols[i] = o.name
		}
		for _, oi := range s.OrderBy {
			idx := resolveOrderExpr(oi.Expr, finalItems, finalCols)
			if idx < 0 {
				return nil, errUnsupported(fmt.Sprintf("ORDER BY %s (not an output column)", oi.Expr))
			}
			p.order = append(p.order, orderKey{col: idx, desc: oi.Desc})
		}
		p.hasOrder = true
	}
	return p, nil
}

// itemName predicts the engine's output column name for a select item,
// mirroring plan.Builder naming: the alias when present, the written
// column name for bare columns, COUNT(*)/AGG(expr) lowercased for
// aggregates, and the expression's display form otherwise.
func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch {
	case it.Agg == sql.AggCountStar:
		return "count(*)"
	case it.Agg != sql.AggNone:
		return strings.ToLower(fmt.Sprintf("%s(%s)", it.Agg, it.Expr))
	default:
		if c, ok := it.Expr.(*expr.Column); ok {
			return c.Name
		}
		return it.Expr.String()
	}
}

// outputColumns predicts the per-shard result's column names for a plain
// select, expanding * through the schema resolver.
func outputColumns(s *sql.Select, schema schemaFn) ([]string, error) {
	var out []string
	expand := func(table string) error {
		if schema == nil {
			return errUnsupported("ORDER BY combined with *")
		}
		cols, err := schema(table)
		if err != nil {
			return err
		}
		out = append(out, cols...)
		return nil
	}
	for _, it := range s.Items {
		if it.Star {
			if it.StarQualifier != "" {
				for _, ref := range s.From {
					if strings.EqualFold(ref.Name(), it.StarQualifier) {
						if err := expand(ref.Table); err != nil {
							return nil, err
						}
					}
				}
				continue
			}
			for _, ref := range s.From {
				if err := expand(ref.Table); err != nil {
					return nil, err
				}
			}
			continue
		}
		out = append(out, itemName(it))
	}
	return out, nil
}

// expandItems mirrors outputColumns but yields select items: each star
// column becomes a bare-column placeholder, keeping item indexes aligned
// with column offsets for ORDER BY resolution.
func expandItems(s *sql.Select, schema schemaFn) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	expand := func(table string) error {
		if schema == nil {
			return errUnsupported("ORDER BY combined with *")
		}
		cols, err := schema(table)
		if err != nil {
			return err
		}
		for _, c := range cols {
			out = append(out, sql.SelectItem{Expr: &expr.Column{Name: c}})
		}
		return nil
	}
	for _, it := range s.Items {
		if it.Star {
			for _, ref := range s.From {
				if it.StarQualifier != "" && !strings.EqualFold(ref.Name(), it.StarQualifier) {
					continue
				}
				if err := expand(ref.Table); err != nil {
					return nil, err
				}
			}
			continue
		}
		out = append(out, it)
	}
	return out, nil
}

// resolveOrderExpr maps an ORDER BY expression to an output column index:
// by alias, by written-form equality with an item's expression, or by
// bare-column match against a predicted output name.
func resolveOrderExpr(e expr.Expr, items []sql.SelectItem, cols []string) int {
	key := exprKey(e)
	for i, it := range items {
		if it.Star {
			continue
		}
		if it.Alias != "" && strings.EqualFold(it.Alias, key) {
			return i
		}
		if it.Expr != nil && it.Agg == sql.AggNone && exprKey(it.Expr) == key {
			return i
		}
	}
	if c, ok := e.(*expr.Column); ok {
		for i, name := range cols {
			if strings.EqualFold(name, c.Name) {
				return i
			}
		}
	}
	return -1
}

// mergeRows combines per-shard result rows per the plan. shardRows holds
// each contacted shard's rows in shard order; cols is the first shard's
// column set (identical across shards by construction).
func (p *selectPlan) mergeRows(shardRows [][]types.Row) []types.Row {
	var rows []types.Row
	if p.agg != nil {
		rows = p.agg.combine(shardRows)
	} else {
		for _, rs := range shardRows {
			rows = append(rows, rs...)
		}
		if p.distinct {
			seen := make(map[string]bool, len(rows))
			dedup := rows[:0]
			for _, r := range rows {
				k := r.Key()
				if !seen[k] {
					seen[k] = true
					dedup = append(dedup, r)
				}
			}
			rows = dedup
		}
	}
	if p.hasOrder {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range p.order {
				c := rows[i][k.col].Compare(rows[j][k.col])
				if c == 0 {
					continue
				}
				return (c < 0) != k.desc
			}
			return false
		})
	}
	if p.limit >= 0 && int64(len(rows)) > p.limit {
		rows = rows[:p.limit]
	}
	return rows
}

// columns returns the merged result's column names. A plain merge passes
// the per-shard columns through; an aggregate merge slices off the
// appended helper columns — the leading names are the shard engine's own
// naming of the original select items, byte-identical to a single-node
// run. Falls back to the predicted names when no shard responded.
func (p *selectPlan) columns(shardCols []string) []string {
	if p.agg == nil {
		return shardCols
	}
	if len(shardCols) >= len(p.agg.outs) {
		return shardCols[:len(p.agg.outs)]
	}
	out := make([]string, len(p.agg.outs))
	for i, o := range p.agg.outs {
		out[i] = o.name
	}
	return out
}

// partial accumulates one aggregate column across shards with the same
// arithmetic the engine's own partial-merge uses (exec/agg.go), so a
// router combine is indistinguishable from a single-node run.
type partial struct {
	count int64
	sum   float64
	isInt bool
	seen  bool
	min   types.Datum
	max   types.Datum
}

func (pa *partial) add(kind sql.AggKind, row types.Row, o aggOut) {
	switch kind {
	case sql.AggCount, sql.AggCountStar:
		pa.count += row[o.src].Int()
	case sql.AggSum:
		v := row[o.src]
		if v.IsNull() {
			return
		}
		pa.seen = true
		if v.Kind() == types.KindFloat {
			pa.isInt = false
		}
		pa.sum += v.Float()
	case sql.AggAvg:
		v := row[o.src]
		if !v.IsNull() {
			pa.seen = true
			pa.sum += v.Float()
		}
		pa.count += row[o.src2].Int()
	case sql.AggMin:
		v := row[o.src]
		if !v.IsNull() && (pa.min.IsNull() || v.Compare(pa.min) < 0) {
			pa.min = v
		}
	case sql.AggMax:
		v := row[o.src]
		if !v.IsNull() && (pa.max.IsNull() || v.Compare(pa.max) > 0) {
			pa.max = v
		}
	}
}

func (pa *partial) result(kind sql.AggKind) types.Datum {
	switch kind {
	case sql.AggCount, sql.AggCountStar:
		return types.NewInt(pa.count)
	case sql.AggSum:
		if !pa.seen {
			return types.Null
		}
		if pa.isInt {
			return types.NewInt(int64(pa.sum))
		}
		return types.NewFloat(pa.sum)
	case sql.AggAvg:
		if pa.count == 0 {
			return types.Null
		}
		return types.NewFloat(pa.sum / float64(pa.count))
	case sql.AggMin:
		return pa.min
	case sql.AggMax:
		return pa.max
	default:
		return types.Null
	}
}

// combine merges per-shard partial-aggregate rows into final rows, one
// per group, in first-seen shard order (callers re-sort under ORDER BY).
func (ap *aggPlan) combine(shardRows [][]types.Row) []types.Row {
	type group struct {
		first    types.Row // a representative row (group-key passthrough)
		partials []*partial
	}
	var order []string
	groups := map[string]*group{}
	key := make(types.Row, len(ap.groupSrc))
	for _, rs := range shardRows {
		for _, row := range rs {
			for i, gi := range ap.groupSrc {
				key[i] = row[gi]
			}
			k := key.Key()
			g, ok := groups[k]
			if !ok {
				g = &group{first: row, partials: make([]*partial, len(ap.outs))}
				for i := range g.partials {
					g.partials[i] = &partial{isInt: true, min: types.Null, max: types.Null}
				}
				groups[k] = g
				order = append(order, k)
			}
			for i, o := range ap.outs {
				if o.kind != sql.AggNone {
					g.partials[i].add(o.kind, row, o)
				}
			}
		}
	}
	out := make([]types.Row, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make(types.Row, len(ap.outs))
		for i, o := range ap.outs {
			if o.kind == sql.AggNone {
				row[i] = g.first[o.src]
			} else {
				row[i] = g.partials[i].result(o.kind)
			}
		}
		out = append(out, row)
	}
	return out
}
