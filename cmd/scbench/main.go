// Command scbench runs the paper-reproduction experiment suite (E1–E13
// plus the P-series systems experiments and the R1 robustness experiment,
// see DESIGN.md and EXPERIMENTS.md) and prints one result table per
// experiment.
//
// Usage:
//
//	scbench [-only E1,E5] [-list] [-parallel N] [-bench-json DIR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"softdb/internal/bench"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", bench.ParallelDegree, "worker count for the parallel configurations (P1)")
	benchJSON := flag.String("bench-json", "", "instead of the experiment tables, run `go test -bench=. -benchtime=1x -short`, write BENCH_<date>.json into this directory, and fail if the E1/E2/E4 optimized variants stop beating their baselines on pages/op, the V1 typed kernels stop beating the tree-walk, or the T1 reader p99 under write load degrades past 3x read-only")
	flag.Parse()
	bench.ParallelDegree = *parallel

	if *benchJSON != "" {
		if err := benchSnapshot(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}

// benchResult is one benchmark line of the snapshot file.
type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"` // unit -> value (ns/op, pages/op, ...)
}

// benchSnapshot runs the top-level benchmark suite, records every reported
// metric into BENCH_<date>.json under dir, and enforces the perf-trajectory
// floor: the optimized variant of E1, E2, and E4 must still beat its
// baseline on pages/op. Five iterations per benchmark, not one: the
// sub-millisecond ops (E1's 6-page indexed probe, the V1 kernels) are
// warmup-dominated on their first iteration, and a snapshot that is mostly
// cold-cache noise can't serve as a trajectory baseline.
func benchSnapshot(dir string) error {
	cmd := exec.Command("go", "test", "-bench=.", "-benchtime=5x", "-short", "-run", "^$", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	fmt.Print(string(out))
	if err != nil {
		return fmt.Errorf("bench run failed: %w", err)
	}
	results := parseBenchOutput(string(out))
	if len(results) == 0 {
		return fmt.Errorf("bench run produced no parseable benchmark lines")
	}
	snapshot := struct {
		Date       string        `json:"date"`
		GoVersion  string        `json:"go_version"`
		GOMAXPROCS int           `json:"gomaxprocs"`
		Benchmarks []benchResult `json:"benchmarks"`
	}{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+snapshot.Date+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	return checkTrajectory(results)
}

// parseBenchOutput extracts benchmark lines of the form
//
//	BenchmarkName/sub-4   12   345 ns/op   6.0 pages/op   7.0 skipped/op
//
// into structured results. Non-benchmark lines are ignored.
func parseBenchOutput(out string) []benchResult {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) > 0 {
			results = append(results, r)
		}
	}
	return results
}

// checkTrajectory fails when a tracked optimized/baseline pair no longer
// shows the optimization winning on pages/op — the regression this guard
// exists to catch is a rewrite silently stopping to fire.
func checkTrajectory(results []benchResult) error {
	pages := func(sub string) (float64, bool) {
		for _, r := range results {
			if strings.Contains(r.Name, sub) {
				v, ok := r.Metrics["pages/op"]
				return v, ok
			}
		}
		return 0, false
	}
	pairs := []struct{ id, optimized, baseline string }{
		{"E1", "E1PredicateIntroduction/sqo", "E1PredicateIntroduction/baseline"},
		{"E2", "E2JoinHoles/holetrim", "E2JoinHoles/baseline"},
		{"E4", "E4JoinElimination/eliminated", "E4JoinElimination/join"},
	}
	var failures []string
	for _, p := range pairs {
		opt, okO := pages(p.optimized)
		base, okB := pages(p.baseline)
		if !okO || !okB {
			failures = append(failures, fmt.Sprintf("%s: missing pages/op for %s or %s", p.id, p.optimized, p.baseline))
			continue
		}
		if opt >= base {
			failures = append(failures, fmt.Sprintf("%s: optimized variant no longer beats baseline on pages/op: %.1f >= %.1f", p.id, opt, base))
			continue
		}
		fmt.Printf("trajectory %s: ok (%.1f < %.1f pages/op)\n", p.id, opt, base)
	}
	// R1: the lifecycle-overhead pair must be present in the snapshot so
	// the robustness run stays tracked; the overhead itself is reported but
	// not gated here — single-iteration wall times are timer-noise-bound
	// (the -race fault-injection CI job carries the hard guarantees).
	nsPerOp := func(sub string) (float64, bool) {
		for _, r := range results {
			if strings.Contains(r.Name, sub) {
				v, ok := r.Metrics["ns/op"]
				return v, ok
			}
		}
		return 0, false
	}
	for _, wl := range []string{"filter-scan", "group-agg"} {
		on, okOn := nsPerOp("R1LifecycleOverhead/" + wl + "/ctx=on")
		off, okOff := nsPerOp("R1LifecycleOverhead/" + wl + "/ctx=off")
		if !okOn || !okOff {
			failures = append(failures, fmt.Sprintf("R1: missing lifecycle benchmark for %s (ctx=on and ctx=off must both report)", wl))
			continue
		}
		fmt.Printf("trajectory R1: %s lifecycle overhead %+.1f%% (informational; bar is 5%%)\n", wl, (on/off-1)*100)
	}
	// S1: the server-throughput benchmark must be present so the network
	// path stays tracked; throughput and tail latency are reported but not
	// gated — absolute numbers depend on the host (the server tests and the
	// S1 experiment carry the semantic guarantees).
	metric := func(sub, unit string) (float64, bool) {
		for _, r := range results {
			if strings.Contains(r.Name, sub) {
				v, ok := r.Metrics[unit]
				return v, ok
			}
		}
		return 0, false
	}
	qps, okQ := metric("S1Server", "qps")
	p99, okP := metric("S1Server", "p99_us")
	if !okQ || !okP {
		failures = append(failures, "S1: missing S1Server benchmark (qps and p99_us must both report)")
	} else {
		fmt.Printf("trajectory S1: server throughput %.0f stmt/s, accepted p99 %.0fµs (informational)\n", qps, p99)
	}
	// D1: both recovery variants must report so the durability path stays
	// tracked, and the checkpointed image must replay a bounded tail —
	// checkpoints silently not truncating replay is the regression this
	// guards. Wall times are host-bound and stay informational.
	unRec, okU := metric("D1Recovery/uncheckpointed", "records/op")
	ckRec, okC := metric("D1Recovery/checkpointed", "records/op")
	switch {
	case !okU || !okC:
		failures = append(failures, "D1: missing D1Recovery benchmark (uncheckpointed and checkpointed must both report records/op)")
	case ckRec >= unRec:
		failures = append(failures, fmt.Sprintf("D1: checkpointed recovery no longer replays a bounded tail: %.0f >= %.0f records/op", ckRec, unRec))
	default:
		fmt.Printf("trajectory D1: recovery replays %.0f records uncheckpointed vs %.0f past the last snapshot (wall time informational)\n", unRec, ckRec)
	}
	// V1: every kernel family must report both the compiled-kernel and the
	// tree-walk variant, and the best typed kernel must still win clearly.
	// A uniform ~1.0x across all typed families means CompilePredicate
	// silently stopped producing specialized stages — the regression this
	// gate exists to catch; per-family margins stay informational because
	// single-iteration wall times are noisy.
	nsPerRow := func(sub string) (float64, bool) {
		for _, r := range results {
			if strings.Contains(r.Name, sub) {
				v, ok := r.Metrics["ns/row"]
				return v, ok
			}
		}
		return 0, false
	}
	bestV1 := 0.0
	for _, kernel := range []string{"eq-int", "lt-float", "between-int", "is-null", "generic-col-col"} {
		k, okK := nsPerRow("V1Kernels/" + kernel + "/kernel")
		w, okW := nsPerRow("V1Kernels/" + kernel + "/treewalk")
		if !okK || !okW {
			failures = append(failures, fmt.Sprintf("V1: missing kernel benchmark for %s (kernel and treewalk must both report ns/row)", kernel))
			continue
		}
		speedup := w / k
		if kernel != "generic-col-col" && speedup > bestV1 {
			bestV1 = speedup
		}
		fmt.Printf("trajectory V1: %s kernel %.1f ns/row vs tree-walk %.1f (%.1fx)\n", kernel, k, w, speedup)
	}
	if bestV1 > 0 && bestV1 < 1.5 {
		failures = append(failures, fmt.Sprintf("V1: no typed kernel beats the tree-walk anymore (best %.2fx); predicate compilation has stopped specializing", bestV1))
	}
	// S2: the shard-router benchmark must show registry pruning still
	// excluding shards — a pruned one-shard-band query contacting as many
	// shards as a broadcast means the registry silently stopped firing,
	// which is the regression this gate catches. Throughput stays
	// informational (host-bound).
	prShards, okPr := metric("S2Router/pruned", "shards/op")
	bcShards, okBc := metric("S2Router/broadcast", "shards/op")
	switch {
	case !okPr || !okBc:
		failures = append(failures, "S2: missing S2Router benchmark (pruned and broadcast must both report shards/op)")
	case prShards >= bcShards:
		failures = append(failures, fmt.Sprintf("S2: shard pruning no longer excludes shards: %.1f >= %.1f shards/op", prShards, bcShards))
	default:
		prQPS, _ := metric("S2Router/pruned", "qps")
		bcQPS, _ := metric("S2Router/broadcast", "qps")
		fmt.Printf("trajectory S2: ok (pruned contacts %.1f shards/op vs %.1f broadcast; %.0f vs %.0f stmt/s informational)\n", prShards, bcShards, prQPS, bcQPS)
	}
	// T1: reader p99 under a concurrent insert flood must stay within a
	// small factor of the read-only p99. Before MVCC snapshot isolation a
	// writer serialized behind each materializing scan and later readers
	// queued behind the writer, inflating this ratio multi-x — scans
	// silently re-acquiring the engine lock across materialization is the
	// regression this gate catches. The 3x bar is deliberately loose:
	// absolute latencies are host-bound, but the pre-MVCC failure mode
	// showed up as 5–10x.
	roP99, okRO := metric("T1ReadUnderWrites", "ro_p99_us")
	rwP99, okRW := metric("T1ReadUnderWrites", "rw_p99_us")
	switch {
	case !okRO || !okRW:
		failures = append(failures, "T1: missing T1ReadUnderWrites benchmark (ro_p99_us and rw_p99_us must both report)")
	case rwP99 > 3*roP99:
		failures = append(failures, fmt.Sprintf("T1: reader p99 under write load degraded to %.0fµs vs %.0fµs read-only (%.1fx > 3x); scans are queueing behind writers again", rwP99, roP99, rwP99/roP99))
	default:
		fmt.Printf("trajectory T1: ok (reader p99 %.0fµs under write flood vs %.0fµs alone, %.2fx <= 3x)\n", rwP99, roP99, rwP99/roP99)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench trajectory regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
