// Command scbench runs the paper-reproduction experiment suite (E1–E13,
// see DESIGN.md and EXPERIMENTS.md) and prints one result table per
// experiment.
//
// Usage:
//
//	scbench [-only E1,E5] [-list] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softdb/internal/bench"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", bench.ParallelDegree, "worker count for the parallel configurations (P1)")
	flag.Parse()
	bench.ParallelDegree = *parallel

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
