// Command softdb is an interactive SQL shell over a softdb instance.
// Statements end with ';'. Besides SQL (CREATE TABLE with constraint modes,
// CREATE [INFORMATIONAL] SUMMARY TABLE, CREATE VIEW, INSERT/UPDATE/DELETE,
// SELECT, EXPLAIN, ANALYZE), the shell accepts backslash commands:
//
//	\d             list tables and views
//	\d NAME        describe a table (columns, constraints, indexes, stats)
//	\sc            list soft characterizations (correlations, holes)
//	\constraints   show the constraint economy ledger, net-benefit ranked
//	\discover T    run the miners over table T and report candidates
//	\metrics       dump the metrics registry in Prometheus text format
//	\trace on|off  toggle per-operator query tracing
//	\trace         show the most recent query's trace
//	\q             quit
//
// The -parallel N flag enables intra-query parallelism with up to N
// workers. -debug-addr HOST:PORT starts an HTTP listener serving /metrics
// (Prometheus text format), /debug/queries (recent query traces),
// /debug/constraints (the economy ledger as JSON), /debug/wal (durability
// status) and /debug/pprof/* (live profiling).
// -slow-query D logs queries slower than duration D; -trace starts with
// per-operator tracing on. -no-prune disables synopsis-based page pruning
// (useful for measuring what the zone maps buy), -no-batch disables
// vectorized execution (operators process one row at a time, same plans
// and answers — useful for measuring what the columnar batches buy).
// -timeout D applies a
// per-statement deadline, -mem-budget N caps the bytes of rows a query may
// buffer, and -max-concurrent N gates statement admission. The first
// Ctrl-C cancels the running query through the context path; a second (or
// one at the prompt) exits cleanly. An optional file argument is executed
// as a script before the prompt.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/sql"
	"softdb/internal/types"
	"softdb/internal/wal"
	"softdb/internal/wire"
)

// interruptState routes SIGINT: while a statement runs it holds that
// statement's cancel func; at the prompt it is empty and Ctrl-C exits.
type interruptState struct {
	cancel atomic.Pointer[context.CancelFunc]
}

// watch consumes SIGINT for the life of the process: the first Ctrl-C
// during a statement cancels it via the context path, a Ctrl-C with no
// statement running (including the second one, after the cancellation
// lands) exits cleanly.
func (is *interruptState) watch() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	go func() {
		for range ch {
			if cancel := is.cancel.Swap(nil); cancel != nil {
				(*cancel)()
				fmt.Fprintln(os.Stderr, "\ncanceling statement (Ctrl-C again to exit)")
				continue
			}
			fmt.Println()
			os.Exit(0)
		}
	}()
}

// begin installs a fresh statement context; the returned done must be
// called when the statement finishes.
func (is *interruptState) begin() (ctx context.Context, done func()) {
	ctx, cancel := context.WithCancel(context.Background())
	is.cancel.Store(&cancel)
	return ctx, func() {
		is.cancel.Store(nil)
		cancel()
	}
}

func main() {
	parallel := flag.Int("parallel", 1, "maximum intra-query degree of parallelism (1 = serial)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/queries on this address")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this duration (0 = off)")
	trace := flag.Bool("trace", false, "start with per-operator query tracing on")
	noPrune := flag.Bool("no-prune", false, "disable synopsis-based page pruning (zone maps); scans read every page")
	noBatch := flag.Bool("no-batch", false, "disable vectorized (columnar-batch) execution; operators run row at a time")
	timeout := flag.Duration("timeout", 0, "per-statement deadline (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "per-query budget in bytes for buffered rows (0 = unlimited)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission gate: maximum concurrently executing statements (0 = unlimited)")
	connect := flag.String("connect", "", "connect to a softdbd server at this address instead of running an embedded engine")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty = in-memory")
	checkpointEvery := flag.Int("checkpoint-every", 0, "statements between automatic checkpoints (0 = default, <0 = disabled)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
	vacuumInterval := flag.Duration("vacuum-interval", 0, "run background vacuum on this period (0 = off)")
	flag.Parse()

	if *connect != "" {
		is := &interruptState{}
		is.watch()
		remoteMain(*connect, is, flag.Args())
		return
	}

	var db *engine.Database
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var rs *engine.RecoveryStats
		db, rs, err = engine.OpenDurable(*dataDir, engine.DurableOptions{
			SyncPolicy: policy, CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "recovery-error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recovered %s (snapshot lsn %d, %d records replayed)\n",
			*dataDir, rs.SnapshotLSN, rs.RecordsReplayed)
		if rs.TailErr != nil {
			fmt.Fprintln(os.Stderr, "warning: torn log tail truncated:", rs.TailErr)
		}
	} else {
		db = engine.Open()
	}
	db.Parallel = *parallel
	db.NoPrune = *noPrune
	db.NoBatch = *noBatch
	db.StmtTimeout = *timeout
	db.MemBudget = *memBudget
	db.MaxConcurrent = *maxConcurrent
	db.SetTracing(*trace)
	db.SetSlowQueryThreshold(*slowQuery)
	db.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})))
	stopVacuum := db.StartVacuum(*vacuumInterval)
	defer stopVacuum()
	if *debugAddr != "" {
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "debug listener:", err)
			os.Exit(1)
		}
		// Timeouts so a stalled or slow-loris peer cannot pin the listener's
		// goroutines forever; the handler only serves small GET responses.
		srv := &http.Server{
			Handler:           db.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "debug listener:", err)
			}
		}()
		// lis.Addr, not *debugAddr: with ":0" this is the real port.
		fmt.Printf("debug listener on http://%s (/metrics, /debug/queries, /debug/constraints, /debug/wal, /debug/pprof/)\n", lis.Addr())
	}
	is := &interruptState{}
	is.watch()
	if args := flag.Args(); len(args) > 0 {
		script, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Statements run one by one with their printed text as the plan-cache
		// key, so repeated script queries exercise the cache like REPL input.
		stmts, err := sql.ParseAll(string(script))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sess := db.NewSession("script")
		for _, s := range stmts {
			ctx, done := is.begin()
			_, err := sess.ExecStmtCtx(ctx, s, sql.Print(s))
			done()
			if err != nil {
				sess.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		sess.Close()
		fmt.Printf("loaded %s\n", args[0])
	}
	repl(db, is)
	if db.Durable() {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown checkpoint:", err)
			os.Exit(1)
		}
	}
}

func repl(db *engine.Database, is *interruptState) {
	// The REPL runs on a session so BEGIN/COMMIT/ROLLBACK work; Close
	// rolls back a transaction left open at exit.
	sess := db.NewSession("repl")
	defer sess.Close()
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		switch {
		case buf.Len() > 0:
			fmt.Print("   ...> ")
		case sess.InTxn():
			fmt.Print("softdb*> ")
		default:
			fmt.Print("softdb> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !command(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			run(sess, is, buf.String())
			buf.Reset()
		}
		prompt()
	}
}

func run(sess *engine.Session, is *interruptState, stmt string) {
	ctx, done := is.begin()
	res, err := sess.ExecCtx(ctx, strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	done()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, n := range res.Notices {
		fmt.Println("notice:", n)
	}
	if len(res.Columns) > 0 {
		printRows(res.Columns, res.Rows)
		fmt.Printf("(%d rows; %s)\n", len(res.Rows), res.Ctx.String())
	} else {
		fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
	}
}

func printRows(cols []string, rows []types.Row) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		cells[ri] = make([]string, len(r))
		for ci, d := range r {
			// Strings display raw (no SQL quoting) in the shell.
			var s string
			if d.Kind() == types.KindString {
				s = d.Str()
			} else {
				s = d.String()
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], p)
		}
		fmt.Println()
	}
	line(cols)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range cells {
		line(r)
	}
}

func command(db *engine.Database, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q":
		return false
	case "\\d":
		if len(fields) == 1 {
			for _, t := range db.Catalog().TableNames() {
				fmt.Println(t)
			}
			return true
		}
		describe(db, fields[1])
	case "\\sc":
		cat := db.Catalog()
		for _, t := range cat.TableNames() {
			for _, lc := range cat.Correlations(t) {
				fmt.Println(lc.Describe())
			}
		}
		for _, jh := range cat.AllJoinHoles() {
			fmt.Println(jh.Describe())
		}
	case "\\constraints":
		res, err := db.Exec("SHOW CONSTRAINTS ECONOMY")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		if len(res.Rows) == 0 {
			fmt.Println("no constraint economy recorded yet")
			return true
		}
		printRows(res.Columns, res.Rows)
		fmt.Printf("(%d constraints, net-benefit ranked)\n", len(res.Rows))
	case "\\metrics":
		if err := db.Metrics().WritePrometheus(os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case "\\trace":
		if len(fields) == 1 {
			recent := db.QueryLog().Recent(1)
			if len(recent) == 0 {
				fmt.Println("no queries recorded yet")
				return true
			}
			fmt.Print(recent[0].Render())
			return true
		}
		switch fields[1] {
		case "on":
			db.SetTracing(true)
			fmt.Println("tracing on")
		case "off":
			db.SetTracing(false)
			fmt.Println("tracing off")
		default:
			fmt.Println("usage: \\trace [on|off]")
		}
	case "\\discover":
		if len(fields) < 2 {
			fmt.Println("usage: \\discover TABLE")
			return true
		}
		mgr := db.SoftcManager()
		c, err := mgr.DiscoverTable(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, lc := range c.Correlations {
			fmt.Println("correlation:", lc.Describe())
		}
		for _, fd := range c.FDs {
			fmt.Printf("fd: %s -> %s @%.3f\n", strings.Join(fd.Det, ","), fd.Dep, fd.Confidence)
		}
		for _, rg := range c.Ranges {
			fmt.Println("range:", rg.Describe())
		}
	default:
		fmt.Println("unknown command; try \\d, \\sc, \\constraints, \\discover, \\metrics, \\trace, \\q")
	}
	return true
}

// remoteMain is the -connect mode: the same statement loop as the
// embedded REPL, but every statement travels the wire protocol to a
// softdbd server. Supported backslash commands are \set NAME VALUE
// (session settings; VALUE "default" clears an override) and \q. A broken
// connection (Ctrl-C mid-statement, server restart) reconnects
// automatically into a fresh session.
func remoteMain(addr string, is *interruptState, args []string) {
	c, err := client.Connect(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	fmt.Printf("connected to %s (session %s)\n", addr, c.Session())

	// runOne executes one statement, reconnecting once if the connection
	// broke. It reports whether to keep the REPL alive.
	runOne := func(stmt string) bool {
		ctx, done := is.begin()
		res, err := c.Query(ctx, stmt)
		done()
		if err != nil {
			var we *wire.Error
			if errors.As(err, &we) {
				fmt.Println("error:", we)
				return true
			}
			// Transport-level failure: the stream is gone; reconnect.
			fmt.Fprintln(os.Stderr, "connection lost:", err)
			c.Close()
			if c, err = client.Connect(addr); err != nil {
				fmt.Fprintln(os.Stderr, "reconnect:", err)
				return false
			}
			fmt.Printf("reconnected (session %s; session settings reset)\n", c.Session())
			return true
		}
		for _, n := range res.Notices {
			fmt.Println("notice:", n)
		}
		if len(res.Columns) > 0 {
			printRows(res.Columns, res.Rows)
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else {
			fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
		}
		return true
	}

	if len(args) > 0 {
		script, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stmts, err := sql.ParseAll(string(script))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, s := range stmts {
			if !runOne(sql.Print(s)) {
				os.Exit(1)
			}
		}
		fmt.Printf("loaded %s\n", args[0])
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Printf("softdb(%s)> ", addr)
		} else {
			fmt.Print("      ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			fields := strings.Fields(trimmed)
			switch fields[0] {
			case "\\q":
				c.Close()
				return
			case "\\set":
				if len(fields) != 3 {
					fmt.Println("usage: \\set NAME VALUE   (VALUE \"default\" clears the override)")
					break
				}
				if err := c.Set(fields[1], fields[2]); err != nil {
					fmt.Println("error:", err)
				}
			case "\\constraints":
				// The ledger travels as an ordinary result set, so remote
				// inspection needs no wire-protocol extension.
				if !runOne("SHOW CONSTRAINTS ECONOMY") {
					return
				}
			default:
				fmt.Println("remote commands: \\set NAME VALUE, \\constraints, \\q")
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if !runOne(stmt) {
				return
			}
		}
		prompt()
	}
}

func describe(db *engine.Database, table string) {
	te, err := db.Catalog().Table(table)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(te.Def.String())
	for _, con := range te.Constraints {
		fmt.Println("  constraint:", con.Describe())
	}
	for _, ix := range te.Indexes {
		u := ""
		if ix.Unique {
			u = "UNIQUE "
		}
		fmt.Printf("  index: %s%s (%s)\n", u, ix.Name, strings.Join(ix.Columns, ", "))
	}
	fmt.Printf("  rows: %d, pages: %d\n", te.Heap.RowCount(), te.Heap.PageCount())
	if te.Stats != nil {
		for _, col := range te.Def.Columns {
			if cs := te.Stats.Column(col.Name); cs != nil {
				fmt.Println("  stats:", cs.String())
			}
		}
	}
}
