// Command scmine demonstrates the soft-constraint discovery pipeline: it
// builds the synthetic workloads, runs the miners (linear correlations,
// functional dependencies, value ranges, join holes), scores the candidates
// per the paper's selection stage, and prints what would be installed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"softdb/internal/engine"
	"softdb/internal/mining"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

func main() {
	n := flag.Int("n", 50000, "base table size")
	flag.Parse()

	db := engine.Open()
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fail(workload.LoadPurchase(db, workload.PurchaseConfig{
		N: *n, LateFrac: 0.01, Seed: 11, IndexOrderDate: true,
	}))
	fail(workload.LoadDenormalized(db, *n/2, 200, 11))
	fail(workload.LoadOrdersLineitem(db, workload.HolesConfig{
		Orders: *n / 4, LinesPer: 3, Seed: 11, BandLo: *n / 16, BandHi: *n / 8,
	}))

	mgr := softc.NewManager(db.Catalog())
	mgr.FDs = mining.FDMinerConfig{MaxLHS: 1, MinConfidence: 0.95}

	for _, table := range []string{"purchase", "orders_wide"} {
		fmt.Printf("== discovery over %s ==\n", table)
		c, err := mgr.DiscoverTable(table)
		fail(err)
		scored := mgr.SelectCorrelations(c.Correlations, 5)
		for _, sc := range scored {
			fmt.Printf("  correlation %-60s score %.2f (%s)\n", sc.Corr.Describe(), sc.Score, sc.Why)
		}
		for _, fd := range c.FDs {
			fmt.Printf("  fd %s -> %s @%.3f\n", strings.Join(fd.Det, ","), fd.Dep, fd.Confidence)
		}
		for _, rg := range c.Ranges {
			fmt.Printf("  range %s\n", rg.Describe())
		}
		fmt.Println()
	}

	fmt.Println("== join-hole discovery over orders ⋈ lineitem ==")
	left, err := db.Catalog().Table("orders")
	fail(err)
	right, err := db.Catalog().Table("lineitem")
	fail(err)
	jh, joinRows, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	fail(err)
	fmt.Printf("  profiled %d join rows\n", joinRows)
	fmt.Printf("  %s\n", jh.Describe())
	for i, h := range jh.Holes {
		fmt.Printf("    hole %d: %s\n", i+1, h.String())
		if i >= 7 {
			fmt.Printf("    ... (%d more)\n", len(jh.Holes)-i-1)
			break
		}
	}
}
