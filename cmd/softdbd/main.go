// Command softdbd runs a softdb network server: one engine instance
// serving the wire protocol to many concurrent clients (see
// internal/server for the protocol and session model).
//
// An optional file argument is executed as a SQL script against the
// engine before the listener opens, so the daemon starts with schema and
// data loaded. -addr ":0" picks an ephemeral port; the actual bound
// address is printed on stdout (first line, "listening on ADDR") so
// scripts and CI can scrape it. -debug-addr serves /metrics,
// /debug/queries, /debug/constraints (the constraint-economy ledger as
// JSON), /debug/wal (durability status) and /debug/pprof/* the same way.
//
// SIGINT/SIGTERM drains gracefully: the listener closes, in-flight
// statements are canceled through the engine's context path (clients
// receive typed canceled errors), and the process exits once every
// connection is done or -drain-timeout lapses.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"softdb/internal/engine"
	"softdb/internal/server"
	"softdb/internal/sql"
	"softdb/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "TCP listen address for the wire protocol (:0 = ephemeral)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/queries on this address")
	parallel := flag.Int("parallel", 1, "default maximum intra-query degree of parallelism (1 = serial)")
	noPrune := flag.Bool("no-prune", false, "disable synopsis-based page pruning by default")
	noBatch := flag.Bool("no-batch", false, "disable vectorized (columnar-batch) execution by default")
	timeout := flag.Duration("timeout", 0, "default per-statement deadline (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "default per-query budget in bytes for buffered rows (0 = unlimited)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission gate: maximum concurrently executing statements (0 = unlimited)")
	maxConns := flag.Int("max-conns", 0, "maximum concurrently served connections (0 = unlimited)")
	shedQueue := flag.Int("shed-queue", -1, "load shedding: reject statements once more than max-concurrent plus this many are pending (-1 = queue instead)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close connections idle this long (0 = never)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this duration (0 = off)")
	trace := flag.Bool("trace", false, "start with per-operator query tracing on")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight work on shutdown")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty = in-memory")
	checkpointEvery := flag.Int("checkpoint-every", 0, "statements between automatic checkpoints (0 = default, <0 = disabled)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
	walSyncInterval := flag.Duration("wal-sync-interval", 100*time.Millisecond, "minimum gap between fsyncs under -wal-sync=interval")
	vacuumInterval := flag.Duration("vacuum-interval", 0, "run background vacuum on this period (0 = off)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	var db *engine.Database
	// preloaded is true when the data directory already held state; the
	// script argument is skipped then, so a restart against the same
	// directory recovers instead of double-loading.
	preloaded := false
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fail(err)
		}
		if _, err := os.Stat(wal.SnapshotPath(*dataDir)); err == nil {
			preloaded = true
		}
		if fi, err := os.Stat(wal.LogPath(*dataDir)); err == nil && fi.Size() > 0 {
			preloaded = true
		}
		var rs *engine.RecoveryStats
		db, rs, err = engine.OpenDurable(*dataDir, engine.DurableOptions{
			SyncPolicy:      policy,
			SyncInterval:    *walSyncInterval,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			// "recovery-error:" is the reserved stderr marker for a fatal
			// recovery divergence — CI greps for it.
			fmt.Fprintf(os.Stderr, "recovery-error: %v\n", err)
			os.Exit(1)
		}
		if rs.TailErr != nil {
			logger.Warn("recovery truncated torn log tail", "err", rs.TailErr)
		}
		logger.Info("recovery complete",
			"dir", *dataDir,
			"snapshot_lsn", rs.SnapshotLSN,
			"records_replayed", rs.RecordsReplayed,
			"statements_replayed", rs.StatementsReplayed,
			"tail_truncated", rs.TailTruncated,
			"soft_revalidated", rs.Revalidated,
			"soft_invalidated", rs.Invalidated)
	} else {
		db = engine.Open()
	}
	db.Parallel = *parallel
	db.NoPrune = *noPrune
	db.NoBatch = *noBatch
	db.StmtTimeout = *timeout
	db.MemBudget = *memBudget
	db.MaxConcurrent = *maxConcurrent
	db.SetTracing(*trace)
	db.SetSlowQueryThreshold(*slowQuery)
	db.SetLogger(logger)
	stopVacuum := db.StartVacuum(*vacuumInterval)
	defer stopVacuum()

	if args := flag.Args(); len(args) > 0 && preloaded {
		logger.Info("skipping preload script; data directory already holds state", "script", args[0])
	} else if len(args) > 0 {
		script, err := os.ReadFile(args[0])
		if err != nil {
			fail(err)
		}
		stmts, err := sql.ParseAll(string(script))
		if err != nil {
			fail(err)
		}
		for _, s := range stmts {
			if _, err := db.ExecStmtCtx(context.Background(), s, sql.Print(s)); err != nil {
				fail(fmt.Errorf("%s: %w", args[0], err))
			}
		}
		logger.Info("preload complete", "script", args[0], "statements", len(stmts))
	}

	srv := server.New(db, server.Config{
		Addr:           *addr,
		MaxConns:       *maxConns,
		Shed:           *shedQueue >= 0,
		ShedQueueDepth: max(*shedQueue, 0),
		IdleTimeout:    *idleTimeout,
		Logger:         logger,
	})
	bound, err := srv.Listen()
	if err != nil {
		fail(err)
	}
	// First line on stdout so wrappers can scrape the ephemeral port.
	fmt.Printf("listening on %s\n", bound)

	if *debugAddr != "" {
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(err)
		}
		dsrv := &http.Server{
			Handler:           db.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			if err := dsrv.Serve(lis); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener", "err", err)
			}
		}()
		fmt.Printf("debug listener on http://%s (/metrics, /debug/queries, /debug/constraints, /debug/wal, /debug/pprof/)\n", lis.Addr())
	}

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		logger.Info("draining", "timeout", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete; connections force-closed", "err", err)
		}
	}()

	if err := srv.Serve(); err != nil {
		fail(err)
	}
	// Clean shutdown: checkpoint so the next start recovers from the
	// snapshot alone, then release the log.
	if db.Durable() {
		if err := db.Close(); err != nil {
			logger.Error("shutdown checkpoint failed", "err", err)
		} else {
			logger.Info("shutdown checkpoint written", "dir", *dataDir)
		}
	}
	logger.Info("server stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "softdbd:", err)
	os.Exit(1)
}
