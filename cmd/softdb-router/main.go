// Command softdb-router runs a shard router: a wire-protocol server that
// fronts N softdbd shards, routing writes by partition key, fanning reads
// out, and pruning whole shards through its constraint registry (see
// internal/shard).
//
// Topology is static flags: -shard (repeatable, in shard-ID order),
// -partition declaring each partitioned table, -hole declaring verified
// value gaps, -track adding non-key columns to range characterization.
// With -sync the router runs ROUTER SYNC once at startup (and every
// -sync-interval when set), installing the shard-side soft constraints
// that back the registry.
//
// -addr ":0" picks an ephemeral port; the actual bound address is printed
// on stdout (first line, "listening on ADDR") so scripts and CI can
// scrape it. -debug-addr serves /metrics and /debug/shards. SIGINT and
// SIGTERM drain gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"softdb/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7660", "TCP listen address for the wire protocol (:0 = ephemeral)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/shards on this address")
	noPrune := flag.Bool("no-shard-prune", false, "disable registry-based shard pruning (partition routing still applies)")
	doSync := flag.Bool("sync", false, "run ROUTER SYNC once at startup")
	syncInterval := flag.Duration("sync-interval", 0, "re-run ROUTER SYNC on this period (0 = only on demand)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "per-attempt shard dial-and-handshake timeout")
	dialAttempts := flag.Int("dial-attempts", 3, "shard dial attempts before reporting shard-unreachable")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close client connections idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight work on shutdown")

	cfg := shard.Config{}
	flag.Func("shard", "shard server address (repeat, in shard-ID order)", func(v string) error {
		cfg.Addrs = append(cfg.Addrs, v)
		return nil
	})
	flag.Func("partition", "partition spec: table=hash(col) or table=range(col:b1,b2,...) (repeatable)", func(v string) error {
		sp, err := shard.ParseSpec(v)
		if err != nil {
			return err
		}
		cfg.Specs = append(cfg.Specs, sp)
		return nil
	})
	flag.Func("hole", "declared value gap: shard:table.column:lo,hi — verified at sync (repeatable)", func(v string) error {
		h, err := shard.ParseHole(v)
		if err != nil {
			return err
		}
		cfg.Holes = append(cfg.Holes, h)
		return nil
	})
	flag.Func("track", "extra table.column whose per-shard range ROUTER SYNC characterizes (repeatable)", func(v string) error {
		cfg.TrackCols = append(cfg.TrackCols, v)
		return nil
	})
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	cfg.NoPrune = *noPrune
	cfg.DialTimeout = *dialTimeout
	cfg.DialAttempts = *dialAttempts
	cfg.Logger = logger

	r, err := shard.New(cfg)
	if err != nil {
		fail(err)
	}
	defer r.Close()

	if *doSync || *syncInterval > 0 {
		res, err := r.Sync(context.Background())
		if err != nil {
			fail(fmt.Errorf("startup sync: %w", err))
		}
		for _, n := range res.Notices {
			logger.Info("sync", "notice", n)
		}
	}
	if *syncInterval > 0 {
		go func() {
			ticker := time.NewTicker(*syncInterval)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := r.Sync(context.Background()); err != nil {
					logger.Warn("periodic sync failed", "err", err)
				}
			}
		}()
	}

	fe := shard.NewFrontend(r, shard.FrontendConfig{
		Addr:        *addr,
		IdleTimeout: *idleTimeout,
		Logger:      logger,
	})
	bound, err := fe.Listen()
	if err != nil {
		fail(err)
	}
	// First line on stdout so wrappers can scrape the ephemeral port.
	fmt.Printf("listening on %s\n", bound)
	logger.Info("router up", "shards", r.Shards())

	if *debugAddr != "" {
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(err)
		}
		dsrv := &http.Server{
			Handler:           r.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			if err := dsrv.Serve(lis); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener", "err", err)
			}
		}()
		fmt.Printf("debug listener on http://%s (/metrics, /debug/shards)\n", lis.Addr())
	}

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		logger.Info("draining", "timeout", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := fe.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete; connections force-closed", "err", err)
		}
	}()

	if err := fe.Serve(); err != nil {
		fail(err)
	}
	logger.Info("router stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "softdb-router:", err)
	os.Exit(1)
}
