module softdb

go 1.22
