// Warehouse: the data-warehousing setting the paper motivates (§1) — a
// star schema loaded with informational constraints (the loader guarantees
// integrity, the DBMS never re-checks), join elimination over the unchecked
// RI, and a month-partitioned union-all view whose branches are knocked off
// by check constraints (§5).
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"softdb/internal/engine"
	"softdb/internal/workload"
)

func main() {
	db := engine.Open()
	if err := workload.LoadStar(db, workload.StarConfig{
		DimRows: 1000, FactRows: 50000, Seed: 31, FKMode: "informational",
	}); err != nil {
		log.Fatal(err)
	}
	if err := workload.LoadPartitionedSales(db, 3000, 31); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded: dim(1k) + fact(50k) with informational FK; sales_01..12 + union-all view")

	// Join elimination: the dim join exists only to satisfy RI, which the
	// informational FK already promises.
	q1 := "SELECT SUM(f.qty) AS total FROM fact f, dim d WHERE f.dim_id = d.id"
	show(db, "join elimination over informational RI", q1)

	// Branch elimination: January–March touches 3 of 12 branches.
	q2 := "SELECT COUNT(*) AS n, SUM(amount) AS total FROM sales WHERE month BETWEEN 1 AND 3"
	show(db, "union-all branch elimination", q2)
}

func show(db *engine.Database, title, q string) {
	res, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== %s ==\nquery: %s\n", title, q)
	fmt.Print(res.Plan)
	for _, tr := range res.Trace {
		fmt.Println("rewrite:", tr)
	}
	fmt.Printf("result: %v  (%s)\n", res.Rows[0], res.Ctx.String())
}
