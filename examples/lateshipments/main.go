// Lateshipments: the paper's §4.4 flagship example, end to end. The
// business rule "products ship within three weeks" holds for 99% of rows.
// Declared as an SSC with an exception AST (`late_shipments`) holding
// exactly the violators, the query
//
//	SELECT * FROM purchase WHERE ship_date = '...'
//
// rewrites to an indexed three-week window UNION ALL the tiny exception
// table — exact answers, a fraction of the pages.
// Run with: go run ./examples/lateshipments
package main

import (
	"fmt"
	"log"

	"softdb/internal/engine"
	"softdb/internal/workload"
)

func main() {
	db := engine.Open()
	db.DisablePlanCache = true
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{
		N: 100000, LateFrac: 0.01, Seed: 51, ShipWindowMode: "ssc", IndexOrderDate: true,
	}); err != nil {
		log.Fatal(err)
	}

	// The exception AST from the paper, verbatim (modulo date syntax):
	// create summary table late_shipments as
	//   (select * from purchase where ship_date > order_date + 3 weeks)
	res := db.MustExec(`CREATE SUMMARY TABLE late_shipments AS
		(SELECT * FROM purchase WHERE ship_date > order_date + 21)`)
	fmt.Printf("late_shipments materialized: %d rows (%.2f%% of purchase)\n",
		res.RowsAffected, 100*float64(res.RowsAffected)/100000)
	if err := db.LinkException("ship_window", "late_shipments"); err != nil {
		log.Fatal(err)
	}
	db.MustExec("ANALYZE purchase")

	q := "SELECT id, order_date, ship_date FROM purchase WHERE ship_date = DATE '1999-01-01' + 12500"

	db.RewriteOpts.NoExceptionAST = true
	db.RewriteOpts.NoSSCTwins = true
	plain, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	db.RewriteOpts.NoExceptionAST = false
	db.RewriteOpts.NoSSCTwins = false
	rewritten, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwithout the rewrite:")
	fmt.Print(plain.Plan)
	fmt.Printf("pages: %d\n", plain.Ctx.IO.PagesRead)

	fmt.Println("\nwith the exception-AST union rewrite (§4.4):")
	fmt.Print(rewritten.Plan)
	for _, tr := range rewritten.Trace {
		fmt.Println("rewrite:", tr)
	}
	fmt.Printf("pages: %d (%.0fx fewer)\n", rewritten.Ctx.IO.PagesRead,
		float64(plain.Ctx.IO.PagesRead)/float64(rewritten.Ctx.IO.PagesRead))

	if len(plain.Rows) != len(rewritten.Rows) {
		log.Fatalf("ANSWER MISMATCH: %d vs %d", len(plain.Rows), len(rewritten.Rows))
	}
	fmt.Printf("\nanswers identical (%d rows), including any late shipments:\n", len(rewritten.Rows))
	for _, r := range rewritten.Rows {
		late := ""
		if r[2].Date()-r[1].Date() > 21 {
			late = "   <-- late shipment, found via the exception AST"
		}
		fmt.Printf("  id=%-7s order=%s ship=%s%s\n", r[0], r[1], r[2], late)
	}
}
