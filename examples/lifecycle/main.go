// Lifecycle: the paper's §3.2 soft-constraint process end to end —
// discovery, workload-directed selection, probationary installation,
// promotion, exploitation, violation handling with §4.1 backup plans, and
// §3.3 asynchronous refresh.
// Run with: go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"

	"softdb/internal/engine"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

func main() {
	db := engine.Open()
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{
		N: 30000, Seed: 61, IndexOrderDate: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage 0: loaded purchase (30k rows), index on order_date only")

	// Run a workload so the engine observes which columns queries filter on.
	for day := 0; day < 40; day++ {
		q := fmt.Sprintf("SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + %d", 100+day*50)
		if _, err := db.Exec(q); err != nil {
			log.Fatal(err)
		}
	}
	wl := db.WorkloadColumnCounts()
	fmt.Printf("\nstage 1: workload observed — predicate counts: %v\n", wl["purchase"])

	// Discovery (§3.2 stage 1).
	mgr := softc.NewManager(db.Catalog())
	cands, err := mgr.DiscoverTable("purchase")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstage 2: discovery — %d correlation candidates\n", len(cands.Correlations))

	// Workload-directed selection (§3.2 stage 2).
	scored := mgr.SelectCorrelationsForWorkload(cands.Correlations, 2, softc.WorkloadCounts(wl))
	for _, sc := range scored {
		fmt.Printf("   %.2f %s\n        %s\n", sc.Score, sc.Corr.Describe(), sc.Why)
	}

	// Probationary installation (§3.2 stage 3, dynamic selection).
	if err := mgr.InstallOnProbation(scored[:1]); err != nil {
		log.Fatal(err)
	}
	name := scored[0].Corr.Name
	fmt.Printf("\nstage 3: %s installed ON PROBATION (maintained, not yet employed)\n", name)
	q := "SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + 3000"
	res, _ := db.Exec(q)
	fmt.Printf("   query during probation: %d pages (optimizer not using it yet)\n", res.Ctx.IO.PagesRead)

	// Probation survived the workload: promote.
	if err := mgr.Promote(name); err != nil {
		log.Fatal(err)
	}
	res, _ = db.Exec(q)
	fmt.Printf("\nstage 4: promoted — query now reads %d pages via the introduced predicate\n", res.Ctx.IO.PagesRead)

	// A violating write overturns the ASC; the cached plan reverts to its
	// §4.1 backup instead of recompiling, and answers stay exact.
	db.ResetCacheStats()
	vres := db.MustExec("INSERT INTO purchase VALUES (999999, DATE '1998-01-01', DATE '1999-01-01' + 3000, 1.0)")
	for _, n := range vres.Notices {
		fmt.Println("\nstage 5 notice:", n)
	}
	res, _ = db.Exec(q)
	cs := db.CacheStats()
	fmt.Printf("   after violation: %d pages, %d rows (includes the violating row), failovers=%d recompiles=%d\n",
		res.Ctx.IO.PagesRead, len(res.Rows), cs.Failovers, cs.Misses)

	// Asynchronous repair: delete the offender, refresh, reactivate (§3.3).
	db.MustExec("DELETE FROM purchase WHERE id = 999999")
	if err := mgr.RefreshCorrelation(name); err != nil {
		log.Fatal(err)
	}
	res, _ = db.Exec(q)
	fmt.Printf("\nstage 6: refreshed and reactivated — back to %d pages\n", res.Ctx.IO.PagesRead)

	fmt.Println("\nlifecycle log:")
	for _, e := range mgr.Events {
		fmt.Println("  ", e)
	}
}
