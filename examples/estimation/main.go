// Estimation: §5's cardinality-estimation application of statistical soft
// constraints. The project table's (start_date, end_date) columns are
// highly correlated; the independence assumption badly underestimates
// "projects active on day D". The SSC `end_date <= start_date + 30 @0.9`
// twins the end_date predicate onto start_date, reducing the cross-column
// pair to a single-column range and adjusting by the confidence factor.
// Run with: go run ./examples/estimation
package main

import (
	"fmt"
	"log"
	"math"

	"softdb/internal/engine"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

func main() {
	db := engine.Open()
	db.DisablePlanCache = true
	if err := workload.LoadProject(db, workload.ProjectConfig{
		N: 40000, LongFrac: 0.1, Seed: 41, Confidence: 0.9,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded project with 40k rows; 90% last <= 30 days")
	fmt.Println("SSC: end_date <= start_date + 30 SOFT STATISTICAL CONFIDENCE 0.9")

	// Bring the SSC's statistics up to date after the bulk load (runstats),
	// so the currency counters start from a verified state.
	mgr := softc.NewManager(db.Catalog())
	if _, err := mgr.RefreshCheckConfidence("project", "duration"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %-8s %-16s %-12s %-10s %-10s\n",
		"day", "actual", "est-independent", "est-twinned", "q-indep", "q-twin")
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		day := int64(float64(40000/2) * frac)
		actual, err := workload.ActualActiveOn(db, day)
		if err != nil {
			log.Fatal(err)
		}
		q := fmt.Sprintf(
			"SELECT id FROM project WHERE start_date <= DATE '1999-01-01' + %d AND end_date >= DATE '1999-01-01' + %d",
			day, day)
		db.NoSSCEstimation = true
		indep, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		db.NoSSCEstimation = false
		twin, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-8d %-16.0f %-12.0f %-10.2f %-10.2f\n",
			day, actual, indep.EstRows, twin.EstRows,
			qerr(indep.EstRows, actual), qerr(twin.EstRows, actual))
	}

	// §3.3's currency model: how stale can the SSC get?
	fmt.Println("\ncurrency (§3.3): simulate 400 updates, then refresh")
	for i := 0; i < 400; i++ {
		db.MustExec(fmt.Sprintf("UPDATE project SET end_date = start_date + 500 WHERE id = %d", i*97%40000))
	}
	for _, e := range mgr.CurrencyReport() {
		fmt.Printf("  %s: stated %.3f, mods since verify %d, margin %.3f, effective >= %.3f\n",
			e.Name, e.Stated, e.ModsSince, e.Margin, e.Effective)
	}
	conf, err := mgr.RefreshCheckConfidence("project", "duration")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after refresh: confidence %.4f, margin reset\n", conf)
}

func qerr(est float64, actual int64) float64 {
	a := math.Max(float64(actual), 1)
	e := math.Max(est, 1)
	return math.Max(e/a, a/e)
}
