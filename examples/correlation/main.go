// Correlation: the full [10] pipeline — mine a linear correlation between
// two date columns, score and install it as a soft constraint, and watch
// the optimizer introduce a predicate that unlocks an index.
// Run with: go run ./examples/correlation
package main

import (
	"fmt"
	"log"

	"softdb/internal/engine"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

func main() {
	db := engine.Open()
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{
		N: 50000, Seed: 21, IndexOrderDate: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded purchase with 50k rows; index on order_date only")

	// Stage 1: discovery (§3.2).
	mgr := softc.NewManager(db.Catalog())
	cands, err := mgr.DiscoverTable("purchase")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d linear correlations:\n", len(cands.Correlations))
	for _, lc := range cands.Correlations {
		fmt.Println("  ", lc.Describe())
	}

	// Stage 2: selection — rank by estimated utility for the optimizer.
	scored := mgr.SelectCorrelations(cands.Correlations, 3)
	fmt.Println("\ntop candidates by utility:")
	for _, sc := range scored {
		fmt.Printf("   %.2f %s\n        %s\n", sc.Score, sc.Corr.Describe(), sc.Why)
	}

	// Stage 3: installation.
	q := "SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + 5000"
	before, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.InstallCorrelations(scored[:1]); err != nil {
		log.Fatal(err)
	}
	after, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquery: %s\n", q)
	fmt.Printf("before install: %d pages read\n", before.Ctx.IO.PagesRead)
	fmt.Printf("after install:  %d pages read (%.0fx fewer)\n",
		after.Ctx.IO.PagesRead,
		float64(before.Ctx.IO.PagesRead)/float64(after.Ctx.IO.PagesRead))
	fmt.Println("\nplan after install:")
	fmt.Print(indent(after.Plan))
	for _, tr := range after.Trace {
		fmt.Println("rewrite:", tr)
	}
	if len(before.Rows) != len(after.Rows) {
		log.Fatalf("answers changed: %d vs %d rows", len(before.Rows), len(after.Rows))
	}
	fmt.Printf("\nanswers identical before and after (%d rows)\n", len(after.Rows))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "   " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				lines = append(lines, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
