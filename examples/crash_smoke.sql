-- Preload for the CI crash-recovery job (.github/workflows/ci.yml).
--
-- Schema only: the write phase of internal/workload/crash_test.go drives
-- every row over the wire so the verify phase can replay the identical
-- stream against an in-process engine and compare FNV-64 result hashes
-- after the server is kill -9'd and recovered from its data directory.
CREATE TABLE crashkv (
    k INT PRIMARY KEY,
    v INT NOT NULL,
    s STRING,
    CONSTRAINT v_pos CHECK (v >= 0) SOFT
);
CREATE INDEX idx_crashkv_v ON crashkv (v);
