-- Observability smoke workload: exercises the query path (cache miss then
-- hit), a soft-constraint rewrite (predicate introduction over the soft
-- ship-window check), and EXPLAIN ANALYZE, so the /metrics endpoint has
-- non-zero counters to serve. Used by the CI obs-smoke job.
CREATE TABLE purchase (
    id INT PRIMARY KEY,
    order_date DATE NOT NULL,
    ship_date DATE,
    CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
);
CREATE INDEX idx_order ON purchase (order_date);
INSERT INTO purchase VALUES
    (1, DATE '1999-01-01', DATE '1999-01-04'),
    (2, DATE '1999-01-05', DATE '1999-01-09'),
    (3, DATE '1999-01-09', DATE '1999-01-15'),
    (4, DATE '1999-01-14', DATE '1999-01-20'),
    (5, DATE '1999-01-20', DATE '1999-01-28'),
    (6, DATE '1999-01-27', DATE '1999-02-05'),
    (7, DATE '1999-02-03', DATE '1999-02-10'),
    (8, DATE '1999-02-10', DATE '1999-02-18'),
    (9, DATE '1999-02-17', DATE '1999-02-26'),
    (10, DATE '1999-02-24', DATE '1999-03-05');
ANALYZE purchase;
SELECT id FROM purchase WHERE ship_date = DATE '1999-02-18';
SELECT id FROM purchase WHERE ship_date = DATE '1999-02-18';
SELECT COUNT(*) AS n FROM purchase WHERE order_date >= DATE '1999-01-15';
EXPLAIN ANALYZE SELECT id FROM purchase WHERE ship_date = DATE '1999-02-18';
-- Exercise the constraint-economy ledger surface so the smoke job can
-- assert the SQL path works alongside the REPL \constraints command.
SHOW CONSTRAINTS ECONOMY
