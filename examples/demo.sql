-- demo.sql — a script for the interactive shell:
--
--   go run ./cmd/softdb examples/demo.sql
--
-- then try, at the prompt:
--
--   EXPLAIN SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15';
--   \discover purchase
--   \d purchase
--   \sc

CREATE TABLE purchase (
    id INT PRIMARY KEY,
    order_date DATE NOT NULL,
    ship_date  DATE,
    amount     FLOAT,
    CONSTRAINT amount_pos  CHECK (amount >= 0) INFORMATIONAL,
    CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
);

CREATE INDEX idx_order_date ON purchase (order_date);

INSERT INTO purchase VALUES
    (1, DATE '1999-12-01', DATE '1999-12-08', 125.00),
    (2, DATE '1999-12-02', DATE '1999-12-15', 89.50),
    (3, DATE '1999-12-05', DATE '1999-12-15', 42.00),
    (4, DATE '1999-12-10', DATE '1999-12-20', 310.75),
    (5, DATE '1999-12-12', DATE '1999-12-15', 18.25),
    (6, DATE '1999-12-14', DATE '1999-12-28', 77.00);

ANALYZE purchase;

CREATE TABLE sales_01 (month INT NOT NULL, amount FLOAT, CHECK (month = 1));
CREATE TABLE sales_02 (month INT NOT NULL, amount FLOAT, CHECK (month = 2));
CREATE TABLE sales_03 (month INT NOT NULL, amount FLOAT, CHECK (month = 3));
INSERT INTO sales_01 VALUES (1, 100.0), (1, 150.0);
INSERT INTO sales_02 VALUES (2, 200.0);
INSERT INTO sales_03 VALUES (3, 300.0);
CREATE VIEW sales AS
    SELECT * FROM sales_01
    UNION ALL SELECT * FROM sales_02
    UNION ALL SELECT * FROM sales_03;
