// Quickstart: create tables with the paper's constraint modes, load data,
// run queries, and look at plans. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"softdb/internal/engine"
)

func main() {
	db := engine.Open()

	// DDL: enforcement modes straight out of the paper. ENFORCED is a
	// classic IC; INFORMATIONAL is an unchecked promise (§1); SOFT is an
	// absolute soft constraint (checked, but a violating write deactivates
	// it instead of failing, §4.1); SOFT STATISTICAL holds for a fraction
	// of rows and feeds cardinality estimation only (§5).
	mustExec(db, `CREATE TABLE purchase (
		id INT PRIMARY KEY,
		order_date DATE NOT NULL,
		ship_date DATE,
		amount FLOAT,
		CONSTRAINT amount_pos CHECK (amount >= 0) INFORMATIONAL,
		CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
	)`)
	mustExec(db, "CREATE INDEX idx_order_date ON purchase (order_date)")

	for i := 0; i < 2000; i++ {
		mustExec(db, fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d, %d.50)",
			i, i/2, i/2+i%20, i%100))
	}
	mustExec(db, "ANALYZE purchase")

	// A query the soft constraint helps: equality on the unindexed
	// ship_date implies a three-week order_date window (predicate
	// introduction), unlocking the index.
	q := "SELECT id, amount FROM purchase WHERE ship_date = DATE '1999-06-01'"
	res := mustExec(db, "EXPLAIN "+q)
	fmt.Println("plan for:", q)
	for _, r := range res.Rows {
		fmt.Println("  ", r[0].Str())
	}

	res = mustExec(db, q)
	fmt.Printf("\n%d rows, runtime: %s\n", len(res.Rows), res.Ctx.String())
	for _, r := range res.Rows {
		fmt.Printf("  id=%s amount=%s\n", r[0], r[1])
	}

	// A violating write does not fail — the ASC is deactivated instead.
	res = mustExec(db, "INSERT INTO purchase VALUES (99999, DATE '1999-06-01', DATE '2000-06-01', 1.0)")
	for _, n := range res.Notices {
		fmt.Println("\nnotice:", n)
	}
	res = mustExec(db, "EXPLAIN "+q)
	fmt.Println("\nplan after the ASC was overturned (back to a scan):")
	for _, r := range res.Rows {
		fmt.Println("  ", r[0].Str())
	}
}

func mustExec(db *engine.Database, q string) *engine.Result {
	res, err := db.Exec(q)
	if err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	return res
}
